"""Chaos-driven proof of the supervision layer's claims.

Every test here provokes a failure mode with an injected
:class:`ChaosPolicy` and then asserts the two invariants the layer
exists for:

* **no silent loss** — every submitted cell terminates in exactly one
  recorded outcome (cached / simulated / failed / timed-out /
  cancelled), auditable in ``runner.last_report``;
* **recovery is invisible in the data** — a grid that survived retries,
  worker deaths, or pool rebuilds produces payloads bit-identical to a
  clean serial run (the golden-digest test pins this to the repo's
  frozen digests, not just to a same-process control run).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.exec import (
    FINAL_OUTCOMES,
    CellExecutionError,
    CellSpec,
    ChaosAction,
    ChaosPolicy,
    ExperimentRunner,
    SupervisionPolicy,
    payload_to_runs,
)
from repro.sim.config import MachineConfig, Scheme
from tests.test_hotpath_golden import GOLDEN


def spec_for(workload="Fillseq-S", ops=12, **kw):
    kw.setdefault("schemes", (Scheme.BASELINE_SECURE.value, Scheme.FSENCR.value))
    return CellSpec(kind="compare", workload=workload, config=MachineConfig(), ops=ops, **kw)


def grid_for():
    return [spec_for(ops=8), spec_for("DAX-1", iterations=30), spec_for(ops=9)]


def runner_for(tmp_path, name, jobs=2, policy=None, chaos=None, **kw):
    kw.setdefault("fingerprint", "chaos-fingerprint")
    return ExperimentRunner(
        jobs=jobs, cache_dir=tmp_path / name, policy=policy, chaos=chaos, **kw
    )


def chaos_for(tmp_path, name, needle, **action_kw):
    return ChaosPolicy(
        state_dir=str(tmp_path / f"state-{name}"),
        rules={needle: ChaosAction(**action_kw)},
    )


def serial_payloads(tmp_path, grid):
    """The ground truth: a clean, unsupervised, serial, uncached run."""
    results = runner_for(tmp_path, "serial-truth", jobs=1, use_cache=False).run(grid)
    return [r.payload for r in results]


# -- transient failure: retried to a bit-identical payload ---------------


def test_transient_failure_retries_to_bit_identical_payload(tmp_path):
    grid = grid_for()
    chaos = chaos_for(tmp_path, "transient", "DAX-1", kind="transient", times=2)
    runner = runner_for(
        tmp_path, "retry", policy=SupervisionPolicy(max_attempts=3), chaos=chaos
    )
    results = runner.run(grid)
    assert [r.payload for r in results] == serial_payloads(tmp_path, grid)
    assert runner.last_stats.retries == 2
    record = runner.last_report.cells[1]
    assert record.outcome == "simulated"
    assert [a.outcome for a in record.attempts] == ["error", "error", "ok"]
    assert "ChaosTransientError" in record.attempts[0].error


def test_transient_failure_exhausts_attempts_and_fails(tmp_path):
    chaos = chaos_for(tmp_path, "exhaust", "DAX-1", kind="transient", times=10)
    runner = runner_for(
        tmp_path, "exhaust", policy=SupervisionPolicy(max_attempts=2), chaos=chaos
    )
    with pytest.raises(CellExecutionError, match="after 2 attempt"):
        runner.run(grid_for())
    report = runner.last_report
    assert report.complete()
    assert [r.outcome for r in report.cells if r.label.startswith("DAX-1")] == ["failed"]


def test_backoff_is_deterministic_and_recorded(tmp_path):
    policy = SupervisionPolicy(max_attempts=3, backoff_base=0.01)
    assert policy.backoff_seconds("k", 1) == policy.backoff_seconds("k", 1)
    assert policy.backoff_seconds("k", 1) != policy.backoff_seconds("k", 2)
    chaos = chaos_for(tmp_path, "backoff", "DAX-1", kind="transient", times=1)
    runner = runner_for(tmp_path, "backoff", policy=policy, chaos=chaos)
    runner.run(grid_for())
    record = runner.last_report.cells[1]
    assert record.attempts[0].backoff_seconds == pytest.approx(
        policy.backoff_seconds(record.key, 1)
    )


# -- timeouts: hung workers are killed and accounted ---------------------


def test_hung_worker_is_killed_and_recorded_as_timed_out(tmp_path):
    grid = grid_for()
    chaos = chaos_for(tmp_path, "hang", "DAX-1", kind="hang", times=0, seconds=120.0)
    runner = runner_for(
        tmp_path,
        "hang",
        policy=SupervisionPolicy(
            timeout_seconds=0.8, max_attempts=1, failure_policy="continue"
        ),
        chaos=chaos,
    )
    results = runner.run(grid)
    truth = serial_payloads(tmp_path, grid)
    assert results[1] is None  # the hung cell is a quarantined hole...
    assert [r.payload for i, r in enumerate(results) if i != 1] == [
        p for i, p in enumerate(truth) if i != 1
    ]  # ...and its neighbours are untouched
    assert runner.last_stats.timeouts == 1
    record = runner.last_report.cells[1]
    assert record.outcome == "timed-out"
    assert [a.outcome for a in record.attempts] == ["timeout"]


def test_timeout_then_success_retry_is_bit_identical(tmp_path):
    grid = grid_for()
    chaos = chaos_for(tmp_path, "hang1", "DAX-1", kind="hang", times=1, seconds=120.0)
    runner = runner_for(
        tmp_path,
        "hang-retry",
        policy=SupervisionPolicy(timeout_seconds=0.8, max_attempts=2),
        chaos=chaos,
    )
    results = runner.run(grid)
    assert [r.payload for r in results] == serial_payloads(tmp_path, grid)
    assert runner.last_stats.timeouts == 1
    assert runner.last_stats.retries == 1
    record = runner.last_report.cells[1]
    assert record.outcome == "simulated"
    assert [a.outcome for a in record.attempts] == ["timeout", "ok"]


def test_fail_fast_timeout_blames_the_hung_cell(tmp_path):
    chaos = chaos_for(tmp_path, "hangff", "DAX-1", kind="hang", times=0, seconds=120.0)
    runner = runner_for(
        tmp_path,
        "hang-ff",
        policy=SupervisionPolicy(timeout_seconds=0.8, max_attempts=1),
        chaos=chaos,
    )
    with pytest.raises(CellExecutionError, match=r"DAX-1.*timed out") as err:
        runner.run(grid_for())
    assert err.value.report is runner.last_report


# -- worker death: pool rebuild, re-queue, correct attribution -----------


def test_worker_death_rebuilds_pool_and_stays_bit_identical(tmp_path):
    grid = grid_for()
    chaos = chaos_for(tmp_path, "die", "DAX-1", kind="die", times=1)
    runner = runner_for(tmp_path, "die", chaos=chaos)
    results = runner.run(grid)
    assert [r.payload for r in results] == serial_payloads(tmp_path, grid)
    assert runner.last_stats.pool_rebuilds == 1
    assert runner.last_stats.requeues >= 1
    # The victim got a free pool-death attempt, not a consumed retry.
    record = runner.last_report.cells[1]
    assert record.outcome == "simulated"
    assert [a.outcome for a in record.attempts] == ["pool-death", "ok"]
    assert record.executed_attempts == 1


def test_pool_death_is_blamed_on_the_in_flight_cell(tmp_path):
    """Satellite: a dead pool must name the cells actually in flight —
    possibly several, since every worker dies with the pool — and never
    a cell that was still queued, which is what the old
    FIRST_EXCEPTION wait could blame."""
    chaos = chaos_for(tmp_path, "die-always", "DAX-1", kind="die", times=0)
    runner = runner_for(
        tmp_path,
        "die-ff",
        policy=SupervisionPolicy(max_pool_rebuilds=0),
        chaos=chaos,
    )
    # jobs=2 caps in-flight at two cells: the killer and at most one
    # concurrent bystander; Fillseq-S is still queued when the pool dies.
    grid = [
        spec_for("DAX-1", iterations=30),
        spec_for("Fillrandom-S", ops=800),
        spec_for("Fillseq-S", ops=8),
    ]
    with pytest.raises(CellExecutionError) as err:
        runner.run(grid)
    message = str(err.value)
    assert "worker pool died (BrokenProcessPoolError)" in message
    assert "in flight" in message
    assert "DAX-1" in message
    # The queued cell was never in flight and must not be blamed.
    assert "Fillseq-S" not in message.split("in flight:")[1]


def test_poison_cell_is_bounded_by_the_rebuild_budget(tmp_path):
    grid = grid_for()
    chaos = chaos_for(tmp_path, "poison", "DAX-1", kind="die", times=0)
    runner = runner_for(
        tmp_path,
        "poison",
        policy=SupervisionPolicy(max_pool_rebuilds=2, failure_policy="continue"),
        chaos=chaos,
    )
    results = runner.run(grid)
    truth = serial_payloads(tmp_path, grid)
    assert results[1] is None
    assert [r.payload for i, r in enumerate(results) if i != 1] == [
        p for i, p in enumerate(truth) if i != 1
    ]
    # Two tolerated deaths (re-queued), then the third quarantines the
    # cell — and still rebuilds, so the surviving cells keep a live pool.
    assert runner.last_stats.pool_rebuilds == 3
    record = runner.last_report.cells[1]
    assert record.outcome == "failed"
    assert [a.outcome for a in record.attempts] == ["pool-death"] * 3


def test_serial_path_refuses_lethal_chaos(tmp_path):
    chaos = chaos_for(tmp_path, "serial-die", "DAX-1", kind="die", times=1)
    runner = runner_for(tmp_path, "serial-die", jobs=1, chaos=chaos)
    with pytest.raises(CellExecutionError, match="needs a worker pool"):
        runner.run([spec_for("DAX-1", iterations=30)])


# -- failure policy: continue vs fail_fast -------------------------------


def test_fail_fast_attaches_the_grid_report(tmp_path):
    runner = runner_for(tmp_path, "ff")
    grid = [spec_for(ops=8), spec_for("No-Such-Workload")]
    with pytest.raises(CellExecutionError, match="No-Such-Workload") as err:
        runner.run(grid)
    report = err.value.report
    assert report is not None and report.complete()
    assert report.counts()["failed"] == 1


def test_continue_quarantines_and_returns_holes(tmp_path):
    runner = runner_for(
        tmp_path, "cont", policy=SupervisionPolicy(failure_policy="continue")
    )
    grid = [spec_for(ops=8), spec_for("No-Such-Workload"), spec_for(ops=9)]
    results = runner.run(grid)
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    report = runner.last_report
    assert report.complete()
    assert [r.label for r in report.quarantined] == [grid[1].label]
    assert report.failure_lines() and "No-Such-Workload" in report.failure_lines()[0]
    assert runner.last_stats.failed_cells == 1
    # The report round-trips through the results-JSON encoding.
    from repro.exec import GridReport

    rebuilt = GridReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert rebuilt.counts() == report.counts()
    assert [r.label for r in rebuilt.cells] == [r.label for r in report.cells]


# -- corrupt cache writes: detected, quarantined, recomputed -------------


@pytest.mark.parametrize("mode", ["truncate", "garble"])
def test_corrupt_cache_write_is_a_miss_and_verify_quarantines(tmp_path, mode):
    grid = grid_for()
    chaos = chaos_for(tmp_path, f"corrupt-{mode}", "DAX-1", kind="corrupt-write", times=1, mode=mode)
    cold = runner_for(tmp_path, f"corrupt-{mode}", jobs=1, chaos=chaos)
    cold_results = cold.run(grid)

    # The in-memory results are untouched; only the disk entry is bad.
    assert [r.payload for r in cold_results] == serial_payloads(tmp_path, grid)

    # verify() finds exactly the sabotaged entry and quarantines it.
    audit = cold.cache.verify()
    assert audit["checked"] == 3
    assert audit["corrupt"] == 1 and audit["ok"] == 2
    assert len(audit["quarantined"]) == 1
    quarantine = cold.cache.directory / "quarantine"
    assert sorted(p.name for p in quarantine.glob("*.json")) == audit["quarantined"]

    # A warm run treats the (now quarantined) entry as a miss and
    # recomputes it to the same payload; the survivors still hit.
    warm = runner_for(tmp_path, f"corrupt-{mode}", jobs=1)
    warm_results = warm.run(grid)
    assert warm.last_stats.cache_hits == 2
    assert warm.last_stats.simulated == 1
    assert [r.payload for r in warm_results] == [r.payload for r in cold_results]
    assert warm.cache.verify()["corrupt"] == 0


def test_garbled_entry_is_a_miss_even_without_verify(tmp_path):
    """The checksum check in ``get`` itself: a garbled payload with a
    stale checksum must never be served, even if nobody ran verify."""
    grid = [spec_for(ops=8), spec_for("DAX-1", iterations=30)]
    chaos = chaos_for(tmp_path, "garble-get", "DAX-1", kind="corrupt-write", times=1, mode="garble")
    cold = runner_for(tmp_path, "garble-get", jobs=1, chaos=chaos)
    truth = [r.payload for r in cold.run(grid)]
    warm = runner_for(tmp_path, "garble-get", jobs=1)
    results = warm.run(grid)
    assert warm.last_stats.simulated == 1  # the garbled cell, recomputed
    assert [r.payload for r in results] == truth
    assert "garbled" not in json.dumps(results[1].payload)


# -- the acceptance invariant: chaos soup, no cell silently missing ------


def test_every_cell_terminates_in_exactly_one_outcome_under_chaos(tmp_path):
    grid = [
        spec_for(ops=8),
        spec_for("DAX-1", iterations=30),   # hangs once, then succeeds
        spec_for(ops=9),
        spec_for("DAX-2", iterations=30),   # dies once, then succeeds
        spec_for("No-Such-Workload"),       # permanently broken
        spec_for("Fillrandom-S", ops=8),    # transient, retried to success
    ]
    chaos = ChaosPolicy(
        state_dir=str(tmp_path / "state-soup"),
        rules={
            "DAX-1": ChaosAction(kind="hang", times=1, seconds=120.0),
            "DAX-2": ChaosAction(kind="die", times=1),
            "Fillrandom-S": ChaosAction(kind="transient", times=1),
        },
    )
    runner = runner_for(
        tmp_path,
        "soup",
        policy=SupervisionPolicy(
            timeout_seconds=1.5, max_attempts=3, failure_policy="continue"
        ),
        chaos=chaos,
    )
    results = runner.run(grid)
    report = runner.last_report

    # Exactly one recorded outcome per submitted cell, none missing.
    assert len(report.cells) == len(grid)
    assert report.complete()
    for record in report.cells:
        assert record.outcome in FINAL_OUTCOMES
    assert report.counts()["failed"] == 1
    assert report.counts()["simulated"] == len(grid) - 1

    # Result slots line up with the verdicts: payload iff not quarantined.
    for record, result in zip(report.cells, results):
        assert (result is None) == (record.outcome in ("failed", "timed-out"))

    # And every survivor matches the clean serial truth bit-for-bit.
    healthy = [s for s in grid if s.workload != "No-Such-Workload"]
    truth = serial_payloads(tmp_path, healthy)
    survivors = [r.payload for r in results if r is not None]
    assert survivors == truth


# -- golden digests: recovered payloads match the frozen ground truth ----


def _golden_digest(run_result):
    blob = json.dumps(
        {
            "workload": run_result.workload,
            "scheme": run_result.scheme,
            "elapsed_ns": repr(run_result.elapsed_ns),
            "nvm_reads": run_result.nvm_reads,
            "nvm_writes": run_result.nvm_writes,
            "stats": run_result.stats,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def test_retried_grid_reproduces_the_golden_digests(tmp_path):
    """The strongest bit-identity claim: a grid that survived injected
    deaths and transient failures reproduces the repo's frozen hot-path
    digests — recovery provably never perturbs the simulation."""
    spec = spec_for(
        "DAX-1",
        iterations=400,
        workload_seed=7,
        schemes=("baseline_secure", "fsencr"),
    )
    chaos = ChaosPolicy(
        state_dir=str(tmp_path / "state-golden"),
        rules={"DAX-1": ChaosAction(kind="die", times=1)},
    )
    runner = runner_for(
        tmp_path,
        "golden",
        policy=SupervisionPolicy(max_attempts=2),
        chaos=chaos,
    )
    results = runner.run([spec, spec_for(ops=8)])
    assert runner.last_stats.pool_rebuilds == 1
    runs = payload_to_runs(results[0].payload)
    for scheme in ("baseline_secure", "fsencr"):
        want_digest, want_ns, want_reads, want_writes = GOLDEN[("DAX-1", scheme)]
        got = runs[scheme]
        assert got.elapsed_ns == want_ns, f"{scheme}: clock drifted under recovery"
        assert got.nvm_reads == want_reads
        assert got.nvm_writes == want_writes
        assert _golden_digest(got) == want_digest, f"{scheme}: stats drifted under recovery"
