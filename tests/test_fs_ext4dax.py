"""The DAX filesystem: namespace, permissions, crypto hooks, faults."""

import pytest

from repro.fs import AccessDenied, DaxFilesystem, FsError
from repro.kernel import Keyring, KeyringError, MMIORegisters
from repro.mem import PAGE_SIZE


class _RecordingTarget:
    def __init__(self):
        self.installed = {}
        self.revoked = []
        self.stamped = []

    def install_file_key(self, group_id, file_id, key):
        self.installed[(group_id, file_id)] = key

    def revoke_file_key(self, group_id, file_id):
        self.revoked.append((group_id, file_id))

    def update_fecb(self, page, group_id, file_id):
        self.stamped.append((page, group_id, file_id))

    def admin_login(self, credential_digest):
        return True


def make_fs(with_mmio=True, pmem_pages=64):
    target = _RecordingTarget()
    fs = DaxFilesystem(
        pmem_base=1024 * PAGE_SIZE,
        pmem_bytes=pmem_pages * PAGE_SIZE,
        mmio=MMIORegisters(target=target) if with_mmio else None,
    )
    fs.users.add_user(1000, 100)
    fs.users.add_user(2000, 200)
    fs.keyring.login(1000, "alice-pass")
    fs.keyring.login(2000, "bob-pass")
    return fs, target


class TestNamespace:
    def test_create_open_stat(self):
        fs, _ = make_fs()
        handle, _ = fs.create("/f", uid=1000)
        assert fs.exists("/f")
        assert fs.stat("/f").i_ino == handle.inode.i_ino
        opened, _ = fs.open("/f", uid=1000)
        assert opened.inode is handle.inode

    def test_duplicate_create_rejected(self):
        fs, _ = make_fs()
        fs.create("/f", uid=1000)
        with pytest.raises(FsError):
            fs.create("/f", uid=1000)

    def test_open_missing_rejected(self):
        fs, _ = make_fs()
        with pytest.raises(FsError):
            fs.open("/nope", uid=1000)

    def test_unlink_removes(self):
        fs, _ = make_fs()
        fs.create("/f", uid=1000)
        fs.unlink("/f", uid=1000)
        assert not fs.exists("/f")

    def test_inode_numbers_unique(self):
        fs, _ = make_fs()
        a, _ = fs.create("/a", uid=1000)
        b, _ = fs.create("/b", uid=1000)
        assert a.inode.i_ino != b.inode.i_ino


class TestPermissions:
    def test_other_user_cannot_open_private_file(self):
        fs, _ = make_fs()
        fs.create("/secret", uid=1000, mode=0o600)
        with pytest.raises(AccessDenied):
            fs.open("/secret", uid=2000)

    def test_world_readable_opens(self):
        fs, _ = make_fs()
        fs.create("/pub", uid=1000, mode=0o644)
        fs.open("/pub", uid=2000)  # read OK
        with pytest.raises(AccessDenied):
            fs.open("/pub", uid=2000, write=True)

    def test_chmod_owner_only(self):
        fs, _ = make_fs()
        fs.create("/f", uid=1000)
        with pytest.raises(AccessDenied):
            fs.chmod("/f", uid=2000, mode=0o777)
        fs.chmod("/f", uid=1000, mode=0o777)
        assert fs.stat("/f").mode == 0o777

    def test_chmod_777_opens_mode_but_not_key(self):
        """The paper's scenario: permissions botched, crypto holds."""
        fs, _ = make_fs()
        fs.create("/secret", uid=1000, mode=0o600, encrypted=True)
        fs.chmod("/secret", uid=1000, mode=0o777)
        # Bob passes the mode check but his FEKEK cannot unwrap the FEK.
        with pytest.raises(KeyringError):
            fs.open("/secret", uid=2000)


class TestEncryptionHooks:
    def test_create_installs_key(self):
        fs, target = make_fs()
        handle, _ = fs.create("/e", uid=1000, encrypted=True)
        ident = (handle.inode.i_gid, handle.inode.i_ino)
        assert ident in target.installed
        assert len(target.installed[ident]) == 16

    def test_open_reinstalls_same_key(self):
        fs, target = make_fs()
        handle, _ = fs.create("/e", uid=1000, encrypted=True)
        ident = (handle.inode.i_gid, handle.inode.i_ino)
        created_key = target.installed[ident]
        target.installed.clear()
        fs.open("/e", uid=1000)
        assert target.installed[ident] == created_key

    def test_unlink_revokes(self):
        fs, target = make_fs()
        handle, _ = fs.create("/e", uid=1000, encrypted=True)
        fs.unlink("/e", uid=1000)
        assert (handle.inode.i_gid, handle.inode.i_ino) in target.revoked

    def test_plain_file_no_mmio_traffic(self):
        fs, target = make_fs()
        fs.create("/p", uid=1000, encrypted=False)
        assert target.installed == {}

    def test_encrypted_create_requires_session(self):
        fs, _ = make_fs()
        fs.users.add_user(3000, 300)  # never logged in
        with pytest.raises(KeyringError):
            fs.create("/e", uid=3000, encrypted=True)

    def test_key_fingerprint_recorded(self):
        fs, target = make_fs()
        handle, _ = fs.create("/e", uid=1000, encrypted=True)
        assert handle.inode.encryption.key_fingerprint


class TestFaultIn:
    def test_allocates_and_stamps(self):
        fs, target = make_fs()
        handle, _ = fs.create("/e", uid=1000, encrypted=True)
        pfn, df, latency = fs.fault_in(handle, file_page=0)
        assert df is True
        assert latency > 0
        assert (pfn, handle.inode.i_gid, handle.inode.i_ino) in target.stamped
        assert pfn >= 1024  # inside the PMEM region

    def test_repeat_fault_same_page(self):
        fs, _ = make_fs()
        handle, _ = fs.create("/f", uid=1000)
        pfn1, _, _ = fs.fault_in(handle, 0)
        pfn2, _, _ = fs.fault_in(handle, 0)
        assert pfn1 == pfn2

    def test_plain_file_no_df(self):
        fs, _ = make_fs()
        handle, _ = fs.create("/f", uid=1000)
        _, df, _ = fs.fault_in(handle, 0)
        assert df is False

    def test_no_mmio_means_no_df(self):
        fs, _ = make_fs(with_mmio=False)
        handle, _ = fs.create("/f", uid=1000)
        _, df, _ = fs.fault_in(handle, 0)
        assert df is False

    def test_size_grows_with_faults(self):
        fs, _ = make_fs()
        handle, _ = fs.create("/f", uid=1000)
        fs.fault_in(handle, 3)
        assert handle.inode.size == 4 * PAGE_SIZE


class TestAllocation:
    def test_enospc(self):
        fs, _ = make_fs(pmem_pages=2)
        handle, _ = fs.create("/f", uid=1000)
        fs.fault_in(handle, 0)
        fs.fault_in(handle, 1)
        with pytest.raises(FsError):
            fs.fault_in(handle, 2)

    def test_unlink_frees_pages(self):
        fs, _ = make_fs(pmem_pages=2)
        handle, _ = fs.create("/f", uid=1000)
        fs.fault_in(handle, 0)
        fs.fault_in(handle, 1)
        fs.unlink("/f", uid=1000)
        handle2, _ = fs.create("/g", uid=1000)
        fs.fault_in(handle2, 0)
        fs.fault_in(handle2, 1)  # space reclaimed

    def test_free_bytes(self):
        fs, _ = make_fs(pmem_pages=4)
        assert fs.free_bytes == 4 * PAGE_SIZE
        handle, _ = fs.create("/f", uid=1000)
        fs.fault_in(handle, 0)
        assert fs.free_bytes == 3 * PAGE_SIZE

    def test_misaligned_region_rejected(self):
        with pytest.raises(ValueError):
            DaxFilesystem(pmem_base=100, pmem_bytes=PAGE_SIZE)
