"""Failure injection: bit flips, replay, and partial state loss.

Attack/reliability scenarios beyond the happy path: every injected
fault must surface as a detected failure (IntegrityError / tag failure
/ ECC mismatch), never as silently wrong data.
"""

import pytest

from repro.core import FsEncrController, set_df
from repro.mem import MemoryRequest
from repro.secmem import (
    BaselineSecureController,
    IntegrityError,
    MetadataLayout,
    SecureControllerConfig,
    check_line,
    encode_line,
)


LAYOUT = MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)


def fsencr(functional=True):
    return FsEncrController(layout=LAYOUT, config=SecureControllerConfig(functional=functional))


class TestCiphertextBitFlips:
    """Flips in the stored ciphertext (rowhammer / cosmic ray on data).

    Counter-mode without a data MAC does not detect data flips — they
    decrypt to flipped plaintext bits — but the line's ECC does, which
    is exactly the division of labour Osiris relies on.
    """

    def test_data_flip_visible_to_ecc(self):
        ctl = fsencr()
        plaintext = b"\x10" * 64
        ctl.write_data(0x6000, plaintext)
        ecc = encode_line(plaintext)
        # Inject: flip one stored ciphertext bit.
        sealed = bytearray(ctl.store.read_line(0x6000))
        sealed[5] ^= 0x01
        ctl.store.write_line(0x6000, bytes(sealed))
        corrupted = ctl.read_data(0x6000)
        assert corrupted != plaintext
        assert not check_line(corrupted, ecc)  # ECC catches it

    def test_flip_does_not_cascade_across_lines(self):
        ctl = fsencr()
        ctl.write_data(0x6000, b"\x10" * 64)
        ctl.write_data(0x6040, b"\x20" * 64)
        sealed = bytearray(ctl.store.read_line(0x6000))
        sealed[0] ^= 0xFF
        ctl.store.write_line(0x6000, bytes(sealed))
        assert ctl.read_data(0x6040) == b"\x20" * 64  # neighbour intact


class TestMetadataAttacks:
    def test_counter_rollback_detected(self):
        """Classic replay: roll a counter back to re-observe an old pad."""
        ctl = fsencr()
        ctl.write_data(0x6000, b"\x01" * 64)
        ctl.write_data(0x6000, b"\x02" * 64)
        ctl.mecb.block(6).minors[0] -= 1  # rollback
        with pytest.raises(IntegrityError):
            ctl.read_data(0x6000)

    def test_counter_forward_jump_detected(self):
        ctl = fsencr()
        ctl.write_data(0x6000, b"\x01" * 64)
        ctl.mecb.block(6).minors[0] += 7
        with pytest.raises(IntegrityError):
            ctl.read_data(0x6000)

    def test_major_counter_tamper_detected(self):
        ctl = fsencr()
        ctl.write_data(0x6000, b"\x01" * 64)
        ctl.mecb.block(6).major += 1
        with pytest.raises(IntegrityError):
            ctl.read_data(0x6000)

    def test_cross_page_counter_swap_detected(self):
        """Swap two pages' counter blocks wholesale (splicing)."""
        ctl = fsencr()
        ctl.write_data(0x6000, b"\x01" * 64)
        ctl.write_data(0x6000, b"\x01" * 64)  # distinct histories, else
        ctl.write_data(0x8000, b"\x02" * 64)  # the swap is a no-op
        a, b = ctl.mecb.block(6), ctl.mecb.block(8)
        a_state = (a.major, list(a.minors))
        a.major, a.minors = b.major, list(b.minors)
        b.major, b.minors = a_state
        with pytest.raises(IntegrityError):
            ctl.read_data(0x6000)

    def test_ott_region_flip_fails_tag_not_plaintext(self):
        ctl = fsencr()
        ctl.install_file_key(1, 9, bytes([5]) * 16)
        slot = ctl.ott_region.store(
            type(ctl.ott.lookup(1, 9))(group_id=1, file_id=9, key=bytes([5]) * 16)
        )
        ctl.ott.remove(1, 9)  # force the next lookup through the region
        ctl.ott_region.tamper(slot)
        found, _ = ctl.ott_region.fetch(1, 9)
        assert found is None  # tag failure, not a corrupted key


class TestPartialStateLoss:
    def test_lost_metadata_cache_is_recoverable_state(self):
        """A crash wipes the metadata cache; the in-memory counter store
        plus Osiris bounds mean every counter is recoverable, so reads
        after 'reboot' still verify and decrypt."""
        ctl = fsencr()
        ctl.write_data(0x6000, b"\x3c" * 64)
        ctl.metadata_cache.flush_all()  # crash: on-chip state gone
        assert ctl.read_data(0x6000) == b"\x3c" * 64

    def test_osiris_distance_never_exceeds_stop_loss(self):
        ctl = BaselineSecureController(
            layout=LAYOUT, config=SecureControllerConfig(stop_loss=4)
        )
        for i in range(64):
            ctl.access(MemoryRequest(addr=0x6000 + (i % 8) * 64, is_write=True))
        for distance in ctl.osiris.pending_lines().values():
            assert distance < 4

    def test_locked_engine_blocks_even_after_cache_flush(self):
        ctl = fsencr()
        ctl.admin_login(b"x" * 32)
        ctl.install_file_key(1, 9, bytes([5]) * 16)
        ctl.update_fecb(page=6, group_id=1, file_id=9)
        addr = set_df(6 * 4096)
        ctl.write_data(addr, b"\x44" * 64)
        ctl.admin_login(b"y" * 32)  # wrong: locks
        ctl.metadata_cache.flush_all()
        assert ctl.read_data(addr) != b"\x44" * 64
