"""Anubis shadow tracking vs Osiris: the recovery-time trade."""

import pytest

from repro.secmem.anubis import AnubisRecovery, ShadowTable


class TestShadowTable:
    def test_insert_tracks(self):
        shadow = ShadowTable(capacity_lines=4, base_addr=0x100000)
        shadow.note_insert(0x4000)
        assert shadow.tracked_lines() == {0x4000}
        assert shadow.occupancy == 1

    def test_evict_untracks_and_recycles(self):
        shadow = ShadowTable(capacity_lines=1, base_addr=0x100000)
        shadow.note_insert(0x4000)
        shadow.note_evict(0x4000)
        assert shadow.tracked_lines() == set()
        shadow.note_insert(0x5000)  # slot was recycled
        assert shadow.occupancy == 1

    def test_reinsert_updates_in_place(self):
        shadow = ShadowTable(capacity_lines=2, base_addr=0x100000)
        shadow.note_insert(0x4000)
        shadow.note_insert(0x4000)
        assert shadow.occupancy == 1
        assert shadow.stats.get("shadow_writes") == 2  # update wrote again

    def test_overflow_is_loud(self):
        shadow = ShadowTable(capacity_lines=1, base_addr=0x100000)
        shadow.note_insert(0x4000)
        with pytest.raises(RuntimeError):
            shadow.note_insert(0x5000)

    def test_evict_unknown_is_noop(self):
        shadow = ShadowTable(capacity_lines=1, base_addr=0x100000)
        shadow.note_evict(0x4000)
        assert shadow.occupancy == 0

    def test_write_hook_receives_region_addresses(self):
        written = []
        shadow = ShadowTable(
            capacity_lines=4, base_addr=0x100000, write_hook=written.append
        )
        shadow.note_insert(0x4000)
        shadow.note_evict(0x4000)
        assert all(0x100000 <= addr < 0x100000 + 4 * 64 for addr in written)
        assert len(written) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ShadowTable(capacity_lines=0, base_addr=0)


class TestAnubisRecovery:
    def test_recovers_exactly_tracked_lines(self):
        shadow = ShadowTable(capacity_lines=8, base_addr=0x100000)
        for addr in (0x4000, 0x4040, 0x9000):
            shadow.note_insert(addr)
        shadow.note_evict(0x4040)  # clean again

        restored = []
        result = AnubisRecovery().recover(shadow, restored.append)
        assert sorted(restored) == [0x4000, 0x9000]
        assert result.recovered_lines == 2
        assert result.shadow_reads == 2

    def test_recovery_work_bounded_by_cache_not_memory(self):
        """The headline: a long run over a huge footprint still leaves
        at most capacity_lines to recover."""
        capacity = 16
        shadow = ShadowTable(capacity_lines=capacity, base_addr=0x100000)
        # Simulate a long run: lines churn through the 16-slot cache.
        resident = []
        for i in range(10_000):
            addr = 0x4000 + i * 64
            if len(resident) == capacity:
                shadow.note_evict(resident.pop(0))
            shadow.note_insert(addr)
            resident.append(addr)
        result = AnubisRecovery().recover(shadow, lambda addr: None)
        assert result.recovered_lines <= capacity

    def test_osiris_vs_anubis_recovery_work(self):
        """Osiris recovery scales with the written footprint (every
        written line gets trial decryptions); Anubis with the cache."""
        from repro.secmem import OsirisRecovery, check_line, encode_line

        written_lines = 400
        cache_lines = 16
        stop_loss = 4

        # Osiris: every written line, up to stop_loss+1 trials each.
        plaintext = bytes(range(64))
        ecc = encode_line(plaintext)
        recovery = OsirisRecovery(stop_loss=stop_loss)
        for _ in range(written_lines):
            recovery.recover_counter(
                0, lambda candidate: plaintext, lambda line: check_line(line, ecc)
            )
        osiris_trials = recovery.stats.get("trials")

        # Anubis: only the tracked (cache-resident) lines.
        shadow = ShadowTable(capacity_lines=cache_lines, base_addr=0x100000)
        resident = []
        for i in range(written_lines):
            addr = 0x4000 + i * 64
            if len(resident) == cache_lines:
                shadow.note_evict(resident.pop(0))
            shadow.note_insert(addr)
            resident.append(addr)
        anubis = AnubisRecovery().recover(shadow, lambda addr: None)

        assert anubis.recovered_lines < osiris_trials
        assert anubis.recovered_lines <= cache_lines

    def test_runtime_cost_is_the_other_side(self):
        """Anubis pays shadow writes at runtime; Osiris does not."""
        shadow = ShadowTable(capacity_lines=8, base_addr=0x100000)
        for i in range(8):
            shadow.note_insert(0x4000 + i * 64)
        assert shadow.stats.get("shadow_writes") == 8
