"""Benchmark workloads: they run, produce traffic, and replay exactly."""

import pytest

from repro.sim import MachineConfig, Scheme
from repro.workloads import (
    DAX_MICRO_BENCHMARKS,
    PMEMKV_BENCHMARKS,
    WHISPER_BENCHMARKS,
    compare_schemes,
    make_dax_micro,
    make_pmemkv_workload,
    make_whisper_workload,
    run_workload,
)

SMALL = dict(ops=120)
CFG = MachineConfig(scheme=Scheme.FSENCR)


class TestFactories:
    def test_all_pmemkv_names_resolve(self):
        for name, _cls, size in PMEMKV_BENCHMARKS:
            w = make_pmemkv_workload(name, ops=10)
            assert w.name == name
            assert w.value_size == size

    def test_all_whisper_names_resolve(self):
        for name, _cls in WHISPER_BENCHMARKS:
            assert make_whisper_workload(name, ops=10).name == name

    def test_all_micro_names_resolve(self):
        for name, _cls in DAX_MICRO_BENCHMARKS:
            assert make_dax_micro(name, iterations=10).name == name

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            make_pmemkv_workload("nope")
        with pytest.raises(KeyError):
            make_whisper_workload("nope")
        with pytest.raises(KeyError):
            make_dax_micro("nope")

    def test_value_size_suffix(self):
        assert make_pmemkv_workload("Fillseq-S").value_size == 64
        assert make_pmemkv_workload("Fillseq-L").value_size == 4096


class TestRunability:
    @pytest.mark.parametrize("name", [n for n, _, _ in PMEMKV_BENCHMARKS])
    def test_pmemkv_benchmarks_run(self, name):
        result = run_workload(CFG, make_pmemkv_workload(name, ops=40))
        assert result.elapsed_ns > 0
        assert result.workload == name

    @pytest.mark.parametrize("name", [n for n, _ in WHISPER_BENCHMARKS])
    def test_whisper_benchmarks_run(self, name):
        result = run_workload(CFG, make_whisper_workload(name, ops=100))
        assert result.elapsed_ns > 0

    @pytest.mark.parametrize("name", [n for n, _ in DAX_MICRO_BENCHMARKS])
    def test_micro_benchmarks_run(self, name):
        result = run_workload(CFG, make_dax_micro(name, iterations=300))
        assert result.elapsed_ns > 0
        assert result.nvm_reads > 0

    def test_all_schemes_run_one_workload(self):
        for scheme in Scheme:
            result = run_workload(
                CFG.with_scheme(scheme), make_whisper_workload("Hashmap", ops=60)
            )
            assert result.scheme == scheme.value
            assert result.elapsed_ns > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_workload(CFG, make_pmemkv_workload("Fillrandom-S", ops=60, seed=5))
        b = run_workload(CFG, make_pmemkv_workload("Fillrandom-S", ops=60, seed=5))
        assert a.elapsed_ns == b.elapsed_ns
        assert a.nvm_reads == b.nvm_reads
        assert a.nvm_writes == b.nvm_writes

    def test_different_seed_different_order(self):
        a = run_workload(CFG, make_pmemkv_workload("Fillrandom-S", ops=60, seed=5))
        b = run_workload(CFG, make_pmemkv_workload("Fillrandom-S", ops=60, seed=6))
        assert a.elapsed_ns != b.elapsed_ns

    def test_micro_determinism(self):
        a = run_workload(CFG, make_dax_micro("DAX-3", iterations=200))
        b = run_workload(CFG, make_dax_micro("DAX-3", iterations=200))
        assert a.elapsed_ns == b.elapsed_ns


class TestCompareSchemes:
    def test_comparison_runs_and_names_match(self):
        cmp = compare_schemes(
            lambda: make_whisper_workload("Hashmap", ops=80),
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        row = cmp.against(Scheme.BASELINE_SECURE, Scheme.FSENCR)
        assert row.workload == "Hashmap"
        assert row.slowdown > 0

    def test_fsencr_never_faster_than_baseline_on_writes(self):
        cmp = compare_schemes(
            lambda: make_whisper_workload("Hashmap", ops=150),
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        row = cmp.against(Scheme.BASELINE_SECURE, Scheme.FSENCR)
        assert row.slowdown >= 1.0
        assert row.normalized_writes >= 1.0

    def test_empty_schemes_rejected(self):
        with pytest.raises(AssertionError):
            compare_schemes(lambda: make_whisper_workload("Hashmap", ops=10), schemes=())
