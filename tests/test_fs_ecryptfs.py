"""Software-encryption overlay: residency, fault costs, write-back."""

import pytest

from repro.fs import SoftwareEncryptionOverlay
from repro.kernel import PageCache, PageCacheConfig, SoftwareCosts
from repro.mem import NVMDevice


def overlay(capacity=4, encrypted=True):
    device = NVMDevice()
    return (
        SoftwareEncryptionOverlay(
            device=device,
            page_cache=PageCache(PageCacheConfig(capacity_pages=capacity)),
            encrypted=encrypted,
        ),
        device,
    )


class TestFaultPath:
    def test_first_access_faults_and_copies(self):
        ov, device = overlay()
        latency = ov.access_page(1, 0, 0x10000, is_write=False)
        assert latency >= ov.costs.encrypted_fault_ns()
        assert device.read_count == 64  # the whole 4 KB page copied in
        assert ov.stats.get("page_faults") == 1
        assert ov.stats.get("page_decryptions") == 1

    def test_resident_access_free(self):
        ov, device = overlay()
        ov.access_page(1, 0, 0x10000, False)
        reads_before = device.read_count
        assert ov.access_page(1, 0, 0x10000, False) == 0.0
        assert device.read_count == reads_before

    def test_unencrypted_overlay_skips_crypto(self):
        enc, _ = overlay(encrypted=True)
        plain, _ = overlay(encrypted=False)
        lat_enc = enc.access_page(1, 0, 0x10000, False)
        lat_plain = plain.access_page(1, 0, 0x10000, False)
        assert lat_enc > lat_plain
        assert plain.stats.get("page_decryptions") == 0


class TestWriteBack:
    def test_dirty_eviction_encrypts_and_writes(self):
        ov, device = overlay(capacity=1)
        ov.access_page(1, 0, 0x10000, is_write=True)
        writes_before = device.write_count
        ov.access_page(1, 1, 0x11000, is_write=False)  # evicts dirty page 0
        assert device.write_count == writes_before + 64
        assert ov.stats.get("page_writebacks") == 1
        assert ov.stats.get("page_encryptions") == 1

    def test_clean_eviction_free(self):
        ov, device = overlay(capacity=1)
        ov.access_page(1, 0, 0x10000, is_write=False)
        ov.access_page(1, 1, 0x11000, is_write=False)
        assert ov.stats.get("page_writebacks") == 0

    def test_write_hit_marks_dirty(self):
        ov, _ = overlay(capacity=1)
        ov.access_page(1, 0, 0x10000, is_write=False)
        ov.access_page(1, 0, 0x10000, is_write=True)  # hit, now dirty
        ov.access_page(1, 1, 0x11000, is_write=False)
        assert ov.stats.get("page_writebacks") == 1


class TestSync:
    def test_sync_file_writes_back_dirty_pages(self):
        ov, device = overlay(capacity=8)
        ov.access_page(1, 0, 0x10000, is_write=True)
        ov.access_page(1, 1, 0x11000, is_write=True)
        ov.access_page(2, 0, 0x20000, is_write=True)
        latency = ov.sync_file(1)
        assert latency > 0
        assert ov.stats.get("page_writebacks") == 2  # file 2 untouched

    def test_sync_evicts_residency(self):
        ov, _ = overlay(capacity=8)
        ov.access_page(1, 0, 0x10000, is_write=True)
        ov.sync_file(1)
        # Next access faults again.
        assert ov.access_page(1, 0, 0x10000, False) > 0

    def test_thrash_costs_scale(self):
        """A working set over capacity pays per-access fault costs —
        the paper's 'small decrypted buffer' failure mode."""
        ov, _ = overlay(capacity=2)
        total = 0.0
        for round_ in range(3):
            for page in range(4):
                total += ov.access_page(1, page, 0x10000 + page * 4096, False)
        assert ov.stats.get("page_faults") == 12  # every access a fault
