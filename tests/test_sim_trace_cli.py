"""Trace record/replay and the CLI front end."""

import pytest

from repro.sim import Machine, MachineConfig, Scheme, Trace, TraceOp, TraceRecorder, replay


def make_machine(scheme=Scheme.FSENCR):
    machine = Machine(MachineConfig(scheme=scheme))
    machine.add_user(uid=1000, gid=100, passphrase="pw")
    return machine


def drive(machine_like):
    """A tiny workload against the machine-facing API."""
    handle = machine_like.create_file("/pmem/t.dat", uid=1000, encrypted=True)
    base = machine_like.mmap(handle, pages=2)
    machine_like.mark_measurement_start()
    for i in range(32):
        machine_like.store(base + i * 128, 64)
        machine_like.compute(50.0)
    machine_like.persist(base, 256)
    for i in range(32):
        machine_like.load(base + i * 128, 64)
    return machine_like


class TestRecorder:
    def test_records_all_op_kinds(self):
        recorder = TraceRecorder(make_machine(), name="t")
        drive(recorder)
        kinds = {op.op for op in recorder.trace.ops}
        assert kinds == {"create", "mmap", "mark", "store", "compute", "persist", "load"}

    def test_passthrough_results(self):
        recorder = TraceRecorder(make_machine(), name="t")
        drive(recorder)
        assert recorder.result("t").elapsed_ns > 0

    def test_trace_length(self):
        recorder = TraceRecorder(make_machine(), name="t")
        drive(recorder)
        assert len(recorder.trace) == 1 + 1 + 1 + 32 * 2 + 1 + 32


class TestReplay:
    def test_replay_reproduces_timing_exactly(self):
        recorder = TraceRecorder(make_machine(), name="t")
        drive(recorder)
        original = recorder.result("t")

        fresh = make_machine()
        replay(recorder.trace, fresh)
        replayed = fresh.result("t")
        assert replayed.elapsed_ns == pytest.approx(original.elapsed_ns)
        assert replayed.nvm_reads == original.nvm_reads
        assert replayed.nvm_writes == original.nvm_writes

    def test_replay_onto_other_scheme(self):
        recorder = TraceRecorder(make_machine(Scheme.BASELINE_SECURE), name="t")
        drive(recorder)
        baseline = recorder.result("t")

        fsencr = make_machine(Scheme.FSENCR)
        replay(recorder.trace, fsencr)
        result = fsencr.result("t")
        assert result.elapsed_ns >= baseline.elapsed_ns  # FsEncr adds cost

    def test_replay_requires_handle_before_mmap(self):
        trace = Trace(name="bad", ops=[TraceOp(op="mmap", size=1)])
        with pytest.raises(ValueError):
            replay(trace, make_machine())

    def test_unknown_op_rejected(self):
        trace = Trace(name="bad", ops=[TraceOp(op="teleport")])
        with pytest.raises(ValueError):
            replay(trace, make_machine())


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        recorder = TraceRecorder(make_machine(), name="t")
        drive(recorder)
        path = tmp_path / "trace.jsonl"
        recorder.trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "t"
        assert loaded.ops == recorder.trace.ops

    def test_loaded_trace_replays(self, tmp_path):
        recorder = TraceRecorder(make_machine(), name="t")
        drive(recorder)
        original = recorder.result("t")
        path = tmp_path / "trace.jsonl"
        recorder.trace.save(path)

        fresh = make_machine()
        replay(Trace.load(path), fresh)
        assert fresh.result("t").elapsed_ns == pytest.approx(original.elapsed_ns)


class TestCli:
    def test_table1_command(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "System A" in out and "Yes" in out

    def test_fig12_command_small(self, capsys):
        from repro.cli import main

        assert main(["fig12", "--iters", "300"]) == 0
        out = capsys.readouterr().out
        assert "DAX-2" in out and "average" in out

    def test_json_output(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "fig12.json"
        assert main(["fig12", "--iters", "300", "--json", str(target)]) == 0
        assert target.exists()

    def test_unknown_command_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])
