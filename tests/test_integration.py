"""End-to-end scenarios: the paper's stories run on the full machine."""

import pytest

from repro.kernel import KeyringError
from repro.mem import PAGE_SIZE
from repro.sim import Machine, MachineConfig, Scheme


def functional_machine():
    machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
    machine.add_user(uid=1000, gid=100, passphrase="alice-pass")
    machine.add_user(uid=2000, gid=200, passphrase="bob-pass")
    return machine


class TestMultiUserStory:
    """§VI 'Protecting Files from Accidental Permission Changes'."""

    def test_chmod_777_does_not_expose_encrypted_file(self):
        m = functional_machine()
        m.create_file("/pmem/alice.db", uid=1000, mode=0o600, encrypted=True)
        handle = m.open_file("/pmem/alice.db", uid=1000, write=True)
        base = m.mmap(handle, pages=1)
        m.store_bytes(base, b"alice's private ledger entries.")

        # The fat-fingered chmod.
        m.chmod("/pmem/alice.db", uid=1000, mode=0o777)

        # Bob passes the mode check but his passphrase-derived FEKEK
        # cannot unwrap Alice's FEK: open is refused.
        with pytest.raises(KeyringError):
            m.open_file("/pmem/alice.db", uid=2000)

    def test_owner_still_opens_after_chmod(self):
        m = functional_machine()
        m.create_file("/pmem/alice.db", uid=1000, mode=0o600, encrypted=True)
        m.chmod("/pmem/alice.db", uid=1000, mode=0o777)
        handle = m.open_file("/pmem/alice.db", uid=1000)
        assert handle.inode.encrypted

    def test_unencrypted_file_is_exposed_by_chmod(self):
        """The contrast: without the key check, mode bits are the only
        defence, and chmod 777 hands the file over."""
        m = functional_machine()
        m.create_file("/pmem/notes.txt", uid=1000, mode=0o600, encrypted=False)
        m.chmod("/pmem/notes.txt", uid=1000, mode=0o777)
        handle = m.open_file("/pmem/notes.txt", uid=2000)  # no refusal
        assert not handle.inode.encrypted


class TestColdBootStory:
    """§VI 'Protecting Files from Internal Attacks': DIMM pull / OS swap."""

    def test_dimm_scan_sees_only_ciphertext(self):
        m = functional_machine()
        handle = m.create_file("/pmem/secret", uid=1000, encrypted=True)
        base = m.mmap(handle, pages=1)
        secret = b"PAYROLL ROW 42: salary=123456"
        m.store_bytes(base, secret)
        residue = b"".join(m.controller.store.scan().values())
        assert secret not in residue
        assert b"PAYROLL" not in residue

    def test_failed_admin_login_locks_file_engine(self):
        m = functional_machine()
        good = m.keyring.credential_digest("root-pw")
        ok, _ = m.mmio.admin_login(good)
        assert ok

        handle = m.create_file("/pmem/secret", uid=1000, encrypted=True)
        base = m.mmap(handle, pages=1)
        m.store_bytes(base, b"classified")

        # Intruder boots with a different OS / wrong credential.
        bad = m.keyring.credential_digest("guess")
        ok, _ = m.mmio.admin_login(bad)
        assert not ok
        assert m.controller.locked
        assert m.load_bytes(base, 10) != b"classified"

        # Rightful admin returns.
        m.mmio.admin_login(good)
        assert m.load_bytes(base, 10) == b"classified"


class TestSecureDeletionStory:
    def test_unlink_shreds_data(self):
        m = functional_machine()
        handle = m.create_file("/pmem/doomed", uid=1000, encrypted=True)
        base = m.mmap(handle, pages=1)
        m.store_bytes(base, b"ephemeral")
        pfn = handle.inode.extents[0]
        m.unlink("/pmem/doomed", uid=1000)
        # The physical line still holds ciphertext, but the controller's
        # FECB for the page is invalidated: no way back to the plaintext.
        residue = m.controller.store.read_line(pfn * PAGE_SIZE)
        assert residue != bytes(64)
        fecb = m.controller.fecb.peek(pfn)
        assert fecb is None or not fecb.stamped


class TestCrashRecoveryStory:
    def test_ott_survives_crash_via_encrypted_region(self):
        m = functional_machine()
        for i in range(5):
            m.create_file(f"/pmem/f{i}", uid=1000, encrypted=True)
        installed = len(m.controller.ott)
        recovered = m.controller.recover_ott_after_crash()
        assert recovered == installed

    def test_counters_recoverable_within_stop_loss(self):
        """Osiris end-to-end: ECC trial decryption recovers the counter
        value lost from the metadata cache at crash."""
        from repro.secmem import OsirisRecovery, encode_line, check_line
        from repro.crypto import OTPEngine, CounterIV, MEMORY_DOMAIN, xor_bytes

        m = functional_machine()
        handle = m.create_file("/pmem/f", uid=1000, encrypted=False)
        base = m.mmap(handle, pages=1)
        plaintext = b"\x42" * 64
        m.store_bytes(base, plaintext)
        ecc = encode_line(plaintext)

        ctl = m.controller
        pfn = handle.inode.extents[0]
        ciphertext = ctl.store.read_line(pfn * PAGE_SIZE)
        true_minor = ctl.mecb.block(pfn).value_for(0)[1]
        persisted_minor = max(0, true_minor - 2)  # staleness within stop-loss

        engine = OTPEngine(ctl.keys.memory_key)

        def decrypt_with(candidate):
            iv = CounterIV(
                domain=MEMORY_DOMAIN, page_id=pfn, page_offset=0,
                major=0, minor=candidate,
            )
            return xor_bytes(ciphertext, engine.pad_for(iv))

        result = OsirisRecovery(stop_loss=4).recover_counter(
            persisted_minor, decrypt_with, lambda line: check_line(line, ecc)
        )
        assert result.recovered_value == true_minor
        assert decrypt_with(result.recovered_value) == plaintext


class TestFileCopySemantics:
    """§VI 'Copying or Moving Files Within Same Device'."""

    def test_copy_to_new_file_readable_and_distinctly_sealed(self):
        m = functional_machine()
        src = m.create_file("/pmem/src", uid=1000, encrypted=True)
        src_base = m.mmap(src, pages=1)
        content = b"copy me please, kernel!"
        m.store_bytes(src_base, content)

        dst = m.create_file("/pmem/dst", uid=1000, encrypted=True)
        dst_base = m.mmap(dst, pages=1)
        # Kernel copy loop: read through src mapping, write through dst.
        m.store_bytes(dst_base, m.load_bytes(src_base, len(content)))

        assert m.load_bytes(dst_base, len(content)) == content
        src_line = m.controller.store.read_line(src.inode.extents[0] * PAGE_SIZE)
        dst_line = m.controller.store.read_line(dst.inode.extents[0] * PAGE_SIZE)
        assert src_line != dst_line  # spatial uniqueness: different pads
