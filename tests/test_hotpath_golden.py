"""Golden-stats guard for the per-access hot path.

The micro-optimisation pass over ``Machine.load/store``, the cache walk,
the MMU, and ``MemoryRequest`` construction (``__slots__``, hoisted
attribute lookups, precomputed shifts) must be *behaviour-preserving*:
the simulator is a pure function of (config, workload, seed), so any
drift in a stat counter or the simulated clock means the optimisation
changed the model, not just its speed.

These digests were captured on fixed-seed workloads before the pass;
the runs below must reproduce them bit-for-bit.  If a deliberate model
change lands (a new counter, a latency fix), regenerate the table with
``python tests/test_hotpath_golden.py``.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.faults.sweep import sweep_workload, workload_factory
from repro.sim.config import MachineConfig, Scheme
from repro.workloads import make_dax_micro, make_pmemkv_workload, make_whisper_workload
from repro.workloads.base import run_workload

#: (workload, scheme) -> (sha256 of the canonical run record, elapsed_ns,
#: nvm_reads, nvm_writes).  Captured pre-optimisation at fixed seeds.
GOLDEN = {
    ("DAX-1", "fsencr"): ("55e2ed7ca43e88121634544631a82d4389de328dd1cd420014f9b219af7c7d37", 17251.5, 109, 0),
    ("DAX-1", "baseline_secure"): ("2010d4434972a7d4a532a82bbf4fb53ae354a5a153a700440e505f858fe125ef", 15901.5, 109, 0),
    ("Fillseq-S", "fsencr"): ("cf9a5ae5f79d3d6541b137a42b83e090a0dc2c53d8c74fe690efaa639cd965a9", 60744.75, 102, 440),
    ("Hashmap", "software_encryption"): ("bdf528588f28eeebde43b6a1862cec4d05c747f33d94460721f90d5f90dcf938", 170764.05, 733, 450),
    ("Hashmap", "ext4dax_plain"): ("15ee279ca322b95512a16f6c0c8c125bcd6a394844d1e8d1bce403bdc43603cb", 109484.25, 349, 450),
}

#: The functional path (store_bytes / crash / reboot / recovery audit),
#: via one crash-sweep cell: sha256, boundaries_total, sampled points.
GOLDEN_SWEEP = ("1ac29b81d27a224507980e30f9cb56309edb5691b01e8e56791db021554b65fd", 24, 2)

_FACTORIES = {
    "DAX-1": lambda: make_dax_micro("DAX-1", iterations=400, seed=7),
    "Fillseq-S": lambda: make_pmemkv_workload("Fillseq-S", ops=40, seed=1234),
    "Hashmap": lambda: make_whisper_workload("Hashmap", ops=120, seed=99),
}


def _run_digest(workload: str, scheme: Scheme, batch: bool = False):
    result = run_workload(
        MachineConfig(scheme=scheme), _FACTORIES[workload](), batch=batch
    )
    blob = json.dumps(
        {
            "workload": result.workload,
            "scheme": result.scheme,
            "elapsed_ns": repr(result.elapsed_ns),
            "nvm_reads": result.nvm_reads,
            "nvm_writes": result.nvm_writes,
            "stats": result.stats,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest(), result


def _sweep_digest():
    sweep = sweep_workload(
        workload_factory("DAX-3", iterations=12),
        MachineConfig(scheme=Scheme.FSENCR),
        max_points=2,
        seed=0xAB1A,
        name="DAX-3",
    )
    blob = json.dumps(
        {
            "workload": sweep.workload,
            "scheme": sweep.scheme,
            "seed": sweep.seed,
            "boundaries_total": sweep.boundaries_total,
            "points": [
                {
                    "op_index": p.op_index,
                    "plan_seed": p.plan_seed,
                    "dispositions": p.dispositions,
                    "outcomes": p.outcomes,
                    "silent_lines": list(p.silent_lines),
                    "trials": p.trials,
                    "recovery_ns": repr(p.recovery_ns),
                    "recovered_keys": p.recovered_keys,
                }
                for p in sweep.points
            ],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest(), sweep


@pytest.mark.parametrize("workload,scheme", sorted(GOLDEN))
def test_timing_path_bit_identical(workload, scheme):
    digest, result = _run_digest(workload, Scheme(scheme))
    want_digest, want_ns, want_reads, want_writes = GOLDEN[(workload, scheme)]
    # Check the headline numbers first so a mismatch is diagnosable
    # before falling back to "some stat somewhere moved".
    assert result.elapsed_ns == want_ns, f"{workload}/{scheme}: clock drifted"
    assert result.nvm_reads == want_reads, f"{workload}/{scheme}: NVM reads drifted"
    assert result.nvm_writes == want_writes, f"{workload}/{scheme}: NVM writes drifted"
    assert digest == want_digest, f"{workload}/{scheme}: a stat counter drifted"


@pytest.mark.parametrize("workload,scheme", sorted(GOLDEN))
def test_batched_path_bit_identical(workload, scheme):
    """The compiled-trace sweep (repro.sim.batch) must reproduce the
    same frozen digests: batching is an execution strategy, not a model
    change, and this is the contract that makes ``--batch`` safe to use
    on any figure grid."""
    digest, result = _run_digest(workload, Scheme(scheme), batch=True)
    want_digest, want_ns, want_reads, want_writes = GOLDEN[(workload, scheme)]
    assert result.elapsed_ns == want_ns, f"{workload}/{scheme}: clock drifted (batch)"
    assert result.nvm_reads == want_reads, f"{workload}/{scheme}: NVM reads drifted (batch)"
    assert result.nvm_writes == want_writes, f"{workload}/{scheme}: NVM writes drifted (batch)"
    assert digest == want_digest, f"{workload}/{scheme}: a stat counter drifted (batch)"


def test_functional_sweep_bit_identical():
    digest, sweep = _sweep_digest()
    want_digest, want_boundaries, want_points = GOLDEN_SWEEP
    assert sweep.boundaries_total == want_boundaries
    assert len(sweep.points) == want_points
    assert digest == want_digest, "crash-sweep record drifted"


if __name__ == "__main__":  # regenerate the golden table
    import sys

    sys.stdout.write("GOLDEN = {\n")
    for (workload, scheme) in sorted(GOLDEN):
        digest, result = _run_digest(workload, Scheme(scheme))
        sys.stdout.write(
            f'    ("{workload}", "{scheme}"): ("{digest}", '
            f"{result.elapsed_ns!r}, {result.nvm_reads}, {result.nvm_writes}),\n"
        )
    sys.stdout.write("}\n")
    digest, sweep = _sweep_digest()
    sys.stdout.write(
        f'GOLDEN_SWEEP = ("{digest}", {sweep.boundaries_total}, {len(sweep.points)})\n'
    )
