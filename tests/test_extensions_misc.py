"""Wear tracking, B+Tree deletion, extension benchmarks, report module."""

import random

import pytest

from repro.mem import NVMDevice
from repro.sim import Machine, MachineConfig, Scheme
from repro.workloads import (
    PMEMKV_EXTENSIONS,
    PersistentAllocator,
    PersistentBTree,
    make_pmemkv_workload,
    run_workload,
)


class TestWearTracking:
    def test_writes_counted_per_line(self):
        dev = NVMDevice()
        dev.write(0)
        dev.write(0)
        dev.write(64)
        assert dev.wear_of(0) == 2
        assert dev.wear_of(63) == 2  # same line
        assert dev.wear_of(64) == 1
        assert dev.max_wear == 2

    def test_reads_do_not_wear(self):
        dev = NVMDevice()
        dev.read(0)
        assert dev.wear_of(0) == 0

    def test_hotspots_ordered(self):
        dev = NVMDevice()
        for _ in range(5):
            dev.write(128)
        dev.write(0)
        hotspots = dev.wear_hotspots(top=2)
        assert hotspots[0] == (128, 5)
        assert hotspots[1] == (0, 1)

    def test_tracking_can_be_disabled(self):
        dev = NVMDevice(track_wear=False)
        dev.write(0)
        assert dev.wear_of(0) == 0
        assert dev.max_wear == 0

    def test_counter_lines_are_the_wear_hotspot(self):
        """Security metadata concentrates writes — the §VI endurance
        concern, observable: the hottest lines under a write-heavy run
        are counter lines, not data."""
        machine = Machine(MachineConfig(scheme=Scheme.FSENCR))
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        workload = make_pmemkv_workload("Overwrite-S", ops=200)
        workload.setup = lambda m: None  # user already added
        workload.run(machine)
        hottest_addr, hottest_count = machine.device.wear_hotspots(top=1)[0]
        assert hottest_count > 1
        assert hottest_addr >= machine.layout.mecb_base  # metadata region


class TestBTreeDelete:
    def _tree(self):
        machine = Machine(MachineConfig(scheme=Scheme.BASELINE_SECURE))
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        handle = machine.create_file("/pmem/t", uid=1000)
        base = machine.mmap(handle, pages=1024)
        return PersistentBTree(machine, PersistentAllocator(machine, base, 1024 * 4096))

    def test_delete_existing(self):
        tree = self._tree()
        tree.put(5, 64)
        assert tree.delete(5) is True
        assert tree.get(5) is None
        assert tree.size == 0

    def test_delete_missing(self):
        tree = self._tree()
        assert tree.delete(5) is False

    def test_delete_frees_blob_for_reuse(self):
        tree = self._tree()
        tree.put(5, 64)
        live_before = tree.allocator.live_objects
        tree.delete(5)
        assert tree.allocator.live_objects == live_before - 1

    def test_delete_random_subset_preserves_rest(self):
        tree = self._tree()
        keys = list(range(120))
        rng = random.Random(9)
        rng.shuffle(keys)
        for k in keys:
            tree.put(k, 64)
        doomed = set(keys[:60])
        for k in doomed:
            assert tree.delete(k)
        for k in keys:
            expected = None if k in doomed else 64
            assert tree.get(k) == expected
        assert tree.keys_inorder() == sorted(set(keys) - doomed)

    def test_reinsert_after_delete(self):
        tree = self._tree()
        tree.put(5, 64)
        tree.delete(5)
        tree.put(5, 128)
        assert tree.get(5) == 128


class TestExtensionBenchmarks:
    def test_extension_names_resolve(self):
        for name, _cls, _size in PMEMKV_EXTENSIONS:
            assert make_pmemkv_workload(name, ops=10).name == name

    @pytest.mark.parametrize("name", [n for n, _, _ in PMEMKV_EXTENSIONS])
    def test_extensions_run(self, name):
        cfg = MachineConfig(scheme=Scheme.FSENCR)
        result = run_workload(cfg, make_pmemkv_workload(name, ops=60))
        assert result.elapsed_ns > 0

    def test_deleterandom_empties_store(self):
        cfg = MachineConfig(scheme=Scheme.FSENCR)
        # Success of every delete is asserted inside the workload.
        run_workload(cfg, make_pmemkv_workload("Deleterandom-S", ops=80))


class TestReport:
    def test_bar_chart_renders(self):
        from repro.analysis import bar_chart

        text = bar_chart({"YCSB": 4.9, "CTree": 2.8}, title="t", baseline=1.0)
        assert "YCSB" in text and "4.900x" in text and "#" in text

    def test_bar_chart_empty(self):
        from repro.analysis import bar_chart

        assert "(no data)" in bar_chart({}, title="t")

    def test_aggregate_report_without_results(self, tmp_path):
        from repro.analysis import aggregate_report

        text = aggregate_report(tmp_path)
        assert "no results found" in text

    def test_aggregate_report_with_one_figure(self, tmp_path):
        import json

        from repro.analysis import aggregate_report

        (tmp_path / "fig11.json").write_text(json.dumps({
            "title": "Figure 11",
            "rows": [{"workload": "YCSB", "scheme": "fsencr", "slowdown": 1.02,
                      "normalized_writes": 1.1, "normalized_reads": 1.0}],
            "mean_slowdown": 1.02,
        }))
        text = aggregate_report(tmp_path)
        assert "Figure 11" in text and "YCSB" in text

    def test_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--json", str(tmp_path)]) == 0
        assert "aggregate results" in capsys.readouterr().out
