"""Stats plumbing and DF-bit address tagging."""

import pytest

from repro.mem import StatCounters, StatsRegistry
from repro.mem.dfbit import (
    DF_BIT_POSITION,
    DF_MASK,
    PHYSICAL_ADDRESS_BITS,
    clear_df,
    has_df,
    set_df,
    strip,
)


class TestStatCounters:
    def test_add_and_get(self):
        s = StatCounters("x")
        s.add("hits")
        s.add("hits", 4)
        assert s.get("hits") == 5
        assert s.get("absent") == 0

    def test_merge(self):
        a, b = StatCounters("a"), StatCounters("b")
        a.add("k", 2)
        b.add("k", 3)
        a.merge(b)
        assert a.get("k") == 5

    def test_reset(self):
        s = StatCounters("x")
        s.add("k")
        s.reset()
        assert s.get("k") == 0

    def test_as_dict_prefixes(self):
        s = StatCounters("nvm")
        s.add("reads", 7)
        assert s.as_dict() == {"nvm.reads": 7}
        assert s.as_dict(prefix="dev") == {"dev.reads": 7}


class TestStatsRegistry:
    def test_create_and_snapshot(self):
        reg = StatsRegistry()
        reg.create("a").add("x", 1)
        reg.create("b").add("y", 2)
        assert reg.snapshot() == {"a.x": 1, "b.y": 2}

    def test_duplicate_rejected(self):
        reg = StatsRegistry()
        reg.create("a")
        with pytest.raises(ValueError):
            reg.create("a")

    def test_reset_all(self):
        reg = StatsRegistry()
        reg.create("a").add("x")
        reg.reset()
        assert reg.snapshot() == {}

    def test_normalize(self):
        assert StatsRegistry.normalize({"k": 10}, {"k": 5}, "k") == 2.0
        assert StatsRegistry.normalize({"k": 0}, {"k": 0}, "k") == 0.0
        assert StatsRegistry.normalize({"k": 3}, {"k": 0}, "k") == float("inf")


class TestDfBit:
    def test_position_matches_paper(self):
        """The paper's kernel snippet: (1UL << 51) | pfn."""
        assert DF_BIT_POSITION == 51
        assert DF_MASK == 1 << 51
        assert PHYSICAL_ADDRESS_BITS == 52

    def test_set_then_has(self):
        assert has_df(set_df(0x1234))
        assert not has_df(0x1234)

    def test_clear_and_strip(self):
        tagged = set_df(0x1234)
        assert clear_df(tagged) == 0x1234
        assert strip(tagged) == 0x1234
        assert strip(0x1234) == 0x1234

    def test_set_idempotent(self):
        assert set_df(set_df(0x10)) == set_df(0x10)

    def test_address_payload_untouched(self):
        addr = 0xDEAD_BEEF_000
        assert strip(set_df(addr)) == addr

    @pytest.mark.parametrize("bad", [-1, 1 << 52, 1 << 60])
    def test_out_of_space_rejected(self, bad):
        for fn in (set_df, clear_df, has_df, strip):
            with pytest.raises(ValueError):
                fn(bad)

    def test_df_bit_above_usable_memory(self):
        """Half the 52-bit space remains addressable with the DF tag."""
        top_usable = (1 << 51) - 1
        assert set_df(top_usable) < (1 << 52)
