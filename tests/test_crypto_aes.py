"""AES-128 primitive: FIPS-197 conformance, inversion, error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AES128, aes128_decrypt_block, aes128_encrypt_block

# FIPS-197 Appendix C.1 vector.
FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# FIPS-197 Appendix B vector (the worked example).
APPB_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
APPB_PLAIN = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
APPB_CIPHER = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


class TestFipsVectors:
    def test_appendix_c1_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PLAIN) == FIPS_CIPHER

    def test_appendix_c1_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CIPHER) == FIPS_PLAIN

    def test_appendix_b_encrypt(self):
        assert AES128(APPB_KEY).encrypt_block(APPB_PLAIN) == APPB_CIPHER

    def test_appendix_b_decrypt(self):
        assert AES128(APPB_KEY).decrypt_block(APPB_CIPHER) == APPB_PLAIN

    def test_one_shot_helpers(self):
        assert aes128_encrypt_block(FIPS_KEY, FIPS_PLAIN) == FIPS_CIPHER
        assert aes128_decrypt_block(FIPS_KEY, FIPS_CIPHER) == FIPS_PLAIN


class TestValidation:
    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_long_key_rejected(self):
        with pytest.raises(ValueError):
            AES128(bytes(32))

    @pytest.mark.parametrize("size", [0, 1, 15, 17, 64])
    def test_bad_block_size_encrypt(self, size):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(bytes(size))

    @pytest.mark.parametrize("size", [0, 15, 17])
    def test_bad_block_size_decrypt(self, size):
        with pytest.raises(ValueError):
            AES128(bytes(16)).decrypt_block(bytes(size))

    def test_key_property(self):
        assert AES128(FIPS_KEY).key == FIPS_KEY


class TestCipherProperties:
    def test_deterministic(self):
        c = AES128(FIPS_KEY)
        assert c.encrypt_block(FIPS_PLAIN) == c.encrypt_block(FIPS_PLAIN)

    def test_key_sensitivity(self):
        tweaked = bytes([FIPS_KEY[0] ^ 1]) + FIPS_KEY[1:]
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PLAIN) != AES128(tweaked).encrypt_block(FIPS_PLAIN)

    def test_plaintext_sensitivity(self):
        c = AES128(FIPS_KEY)
        tweaked = bytes([FIPS_PLAIN[0] ^ 1]) + FIPS_PLAIN[1:]
        out_a, out_b = c.encrypt_block(FIPS_PLAIN), c.encrypt_block(tweaked)
        assert out_a != out_b
        # Avalanche: a 1-bit input change flips many output bits.
        differing = sum(bin(x ^ y).count("1") for x, y in zip(out_a, out_b))
        assert differing > 30

    def test_not_identity(self):
        assert AES128(bytes(16)).encrypt_block(bytes(16)) != bytes(16)

    @given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_encrypt_decrypt_are_inverse_both_ways(self, block):
        cipher = AES128(FIPS_KEY)
        assert cipher.encrypt_block(cipher.decrypt_block(block)) == block
