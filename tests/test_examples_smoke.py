"""Smoke-run every example script in-process.

Examples are documentation that executes; a broken example is a broken
deliverable.  Each is imported and its ``main()`` run with stdout
captured (the scripts assert their own invariants internally).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out.splitlines()) > 3  # every example narrates its run


def test_all_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart",
        "multi_user_protection",
        "encrypted_kv_store",
        "crash_recovery",
        "machine_migration",
    }
