"""Latency histograms and the tail-latency analysis they support."""

import pytest

from repro.sim import LatencyHistogram, Machine, MachineConfig, Scheme


class TestHistogram:
    def test_record_and_total(self):
        hist = LatencyHistogram()
        for latency in (3.0, 15.0, 100.0):
            hist.record(latency)
        assert hist.total == 3
        assert hist.mean_ns == pytest.approx((3 + 15 + 100) / 3)
        assert hist.max_ns == 100.0

    def test_percentiles_monotone(self):
        hist = LatencyHistogram()
        for i in range(100):
            hist.record(float(i * 10))
        assert hist.percentile(50) <= hist.percentile(90) <= hist.percentile(99)

    def test_overflow_bucket(self):
        hist = LatencyHistogram(edges=[10.0, 20.0])
        hist.record(1e6)
        assert hist.counts[-1] == 1
        assert hist.percentile(100) == 1e6

    def test_percentile_validation(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_empty_percentile(self):
        assert LatencyHistogram().percentile(99) == 0.0

    def test_negative_latency_rejected(self):
        # Regression: negative samples used to land silently in the
        # first bucket, hiding timing-math bugs upstream.
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-1.0)
        assert hist.total == 0

    def test_nan_latency_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(float("nan"))
        assert hist.total == 0

    def test_zero_latency_still_recorded(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        assert hist.total == 1 and hist.counts[0] == 1

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(edges=[20.0, 10.0])
        with pytest.raises(ValueError):
            LatencyHistogram(edges=[])

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(5.0)
        b.record(500.0)
        a.merge(b)
        assert a.total == 2
        assert a.max_ns == 500.0

    def test_merge_mismatched_edges_rejected(self):
        a = LatencyHistogram(edges=[10.0])
        b = LatencyHistogram(edges=[20.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_render(self):
        hist = LatencyHistogram(name="t")
        hist.record(7.0)
        text = hist.render()
        assert "t:" in text and "#" in text

    def test_as_dict_keys(self):
        hist = LatencyHistogram()
        hist.record(50.0)
        d = hist.as_dict()
        assert set(d) == {"total", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"}


class TestMachineIntegration:
    def _run(self, scheme):
        machine = Machine(MachineConfig(scheme=scheme))
        machine.add_user(uid=1000, gid=100, passphrase="p")
        hist = machine.attach_histogram()
        handle = machine.create_file("/pmem/f", uid=1000, encrypted=True)
        base = machine.mmap(handle, pages=16)
        for i in range(0, 16 * 4096, 96):
            machine.load(base + i, 8)
        return hist

    def test_one_sample_per_line_access(self):
        machine = Machine(MachineConfig(scheme=Scheme.FSENCR))
        machine.add_user(uid=1000, gid=100, passphrase="p")
        hist = machine.attach_histogram()
        handle = machine.create_file("/pmem/f", uid=1000, encrypted=True)
        base = machine.mmap(handle, pages=1)
        machine.load(base, 8)  # one line
        machine.load(base, 128)  # two lines
        assert hist.total == 3

    def test_detached_by_default(self):
        machine = Machine(MachineConfig(scheme=Scheme.FSENCR))
        assert machine.latency_histogram is None

    def test_fsencr_fattens_the_tail_not_the_median(self):
        """The distribution-level story: FsEncr's extra metadata misses
        live in the tail; the common case (cache hits) is untouched."""
        baseline = self._run(Scheme.BASELINE_SECURE)
        fsencr = self._run(Scheme.FSENCR)
        assert fsencr.percentile(50) <= baseline.percentile(50) * 1.5
        assert fsencr.mean_ns >= baseline.mean_ns * 0.95
