"""OTP generation and the XOR-composition algebra FsEncr builds on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    AES128,
    FILE_DOMAIN,
    MEMORY_DOMAIN,
    CounterIV,
    OTPEngine,
    apply_pad,
    compose_pads,
    generate_otp,
    xor_bytes,
)


def iv(domain=MEMORY_DOMAIN, page_id=1, page_offset=0, major=0, minor=0):
    return CounterIV(domain=domain, page_id=page_id, page_offset=page_offset, major=major, minor=minor)


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_identity(self):
        assert xor_bytes(b"abc", bytes(3)) == b"abc"

    def test_self_inverse(self):
        assert xor_bytes(b"abc", b"abc") == bytes(3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    @given(a=st.binary(min_size=8, max_size=8), b=st.binary(min_size=8, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_involution_property(self, a, b):
        assert xor_bytes(xor_bytes(a, b), b) == a


class TestGenerateOtp:
    def test_length(self):
        pad = generate_otp(AES128(bytes(16)), iv(), length=64)
        assert len(pad) == 64

    def test_non_multiple_length_rejected(self):
        with pytest.raises(ValueError):
            generate_otp(AES128(bytes(16)), iv(), length=60)

    def test_blocks_differ_within_pad(self):
        """The four AES blocks of one line's pad must not repeat."""
        pad = generate_otp(AES128(bytes(16)), iv(), length=64)
        blocks = [pad[i : i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_distinct_ivs_distinct_pads(self):
        cipher = AES128(bytes(16))
        assert generate_otp(cipher, iv(minor=0)) != generate_otp(cipher, iv(minor=1))
        assert generate_otp(cipher, iv(major=0)) != generate_otp(cipher, iv(major=1))
        assert generate_otp(cipher, iv(page_id=1)) != generate_otp(cipher, iv(page_id=2))
        assert generate_otp(cipher, iv(page_offset=0)) != generate_otp(cipher, iv(page_offset=1))

    def test_domain_separation(self):
        """Same location+version, different engine domain => distinct pad."""
        cipher = AES128(bytes(16))
        assert generate_otp(cipher, iv(domain=MEMORY_DOMAIN)) != generate_otp(
            cipher, iv(domain=FILE_DOMAIN)
        )


class TestComposePads:
    def test_single(self):
        assert compose_pads([b"\x01\x02"]) == b"\x01\x02"

    def test_pair_xor(self):
        assert compose_pads([b"\x0f", b"\xf0"]) == b"\xff"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compose_pads([])

    def test_order_independent(self):
        a, b, c = b"\x12" * 8, b"\x34" * 8, b"\x56" * 8
        assert compose_pads([a, b, c]) == compose_pads([c, a, b])

    def test_dual_layer_requires_both(self):
        """Decrypting a dual-pad seal with only one pad yields garbage —
        the defence-in-depth property."""
        data = b"secret-data-here"
        pad_mem, pad_file = b"\xaa" * 16, b"\x55" * 16
        sealed = apply_pad(data, compose_pads([pad_mem, pad_file]))
        assert apply_pad(sealed, pad_mem) != data
        assert apply_pad(sealed, pad_file) != data
        assert apply_pad(sealed, compose_pads([pad_mem, pad_file])) == data


class TestOTPEngine:
    def test_roundtrip(self):
        engine = OTPEngine(bytes(range(16)))
        sealed = engine.encrypt(b"x" * 64, iv())
        assert engine.decrypt(sealed, iv()) == b"x" * 64

    def test_ciphertext_differs_from_plaintext(self):
        engine = OTPEngine(bytes(range(16)))
        assert engine.encrypt(b"x" * 64, iv()) != b"x" * 64

    def test_key_matters(self):
        a = OTPEngine(bytes(16)).pad_for(iv())
        b = OTPEngine(bytes([1] * 16)).pad_for(iv())
        assert a != b

    def test_rekey_changes_pads(self):
        engine = OTPEngine(bytes(16))
        before = engine.pad_for(iv())
        engine.rekey(bytes([9] * 16))
        assert engine.pad_for(iv()) != before

    def test_line_size_respected(self):
        engine = OTPEngine(bytes(16), line_size=32)
        assert len(engine.pad_for(iv())) == 32
        assert engine.line_size == 32
