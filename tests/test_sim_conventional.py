"""The conventional (pre-DAX) scheme: Figure 1(a)'s access path."""

import pytest

from repro.mem import PAGE_SIZE
from repro.sim import Machine, MachineConfig, Scheme
from repro.workloads import compare_schemes, make_whisper_workload


def make_machine(scheme=Scheme.CONVENTIONAL):
    machine = Machine(MachineConfig(scheme=scheme))
    machine.add_user(uid=1000, gid=100, passphrase="pw")
    return machine


class TestSchemeProperties:
    def test_no_dax_no_encryption(self):
        assert not Scheme.CONVENTIONAL.uses_dax
        assert Scheme.CONVENTIONAL.uses_page_cache
        assert not Scheme.CONVENTIONAL.has_file_encryption

    def test_overlay_present_and_unencrypted(self):
        machine = make_machine()
        assert machine.overlay is not None
        assert machine.overlay.encrypted is False

    def test_software_scheme_overlay_is_encrypted(self):
        machine = make_machine(Scheme.SOFTWARE_ENCRYPTION)
        assert machine.overlay.encrypted is True


class TestAccessPath:
    def test_first_touch_pays_conventional_fault(self):
        machine = make_machine()
        handle = machine.create_file("/data/f", uid=1000)
        base = machine.mmap(handle, pages=1)
        machine.mark_measurement_start()
        machine.load(base, 8)
        result = machine.result("conv")
        # The fault includes the 4 KB device copy: 64 line reads.
        assert result.nvm_reads >= 64
        assert result.elapsed_ns >= machine.costs.conventional_fault_ns()

    def test_resident_access_cheap(self):
        machine = make_machine()
        handle = machine.create_file("/data/f", uid=1000)
        base = machine.mmap(handle, pages=1)
        machine.load(base, 8)  # fault in
        machine.mark_measurement_start()
        machine.load(base + 8, 8)
        assert machine.result("conv").nvm_reads == 0  # page-cache hit

    def test_no_crypto_charged(self):
        machine = make_machine()
        handle = machine.create_file("/data/f", uid=1000)
        base = machine.mmap(handle, pages=1)
        machine.load(base, 8)
        assert machine.overlay.stats.get("page_decryptions") == 0

    def test_df_never_set(self):
        machine = make_machine()
        handle = machine.create_file("/data/f", uid=1000)
        base = machine.mmap(handle, pages=1)
        machine.load(base, 8)
        assert machine.mmu.page_table.lookup(base // PAGE_SIZE).df is False


class TestDaxBenefit:
    def test_dax_beats_conventional(self):
        """The paper's premise: DAX removes the software bottleneck."""
        comparison = compare_schemes(
            lambda: make_whisper_workload("Hashmap", ops=400),
            schemes=(Scheme.EXT4DAX_PLAIN, Scheme.CONVENTIONAL),
        )
        row = comparison.against(Scheme.EXT4DAX_PLAIN, Scheme.CONVENTIONAL)
        assert row.slowdown > 1.05  # conventional is slower than DAX

    def test_software_encryption_worse_than_conventional(self):
        """Ordering: dax < conventional < conventional+crypto."""
        comparison = compare_schemes(
            lambda: make_whisper_workload("CTree", ops=400),
            schemes=(Scheme.CONVENTIONAL, Scheme.SOFTWARE_ENCRYPTION),
        )
        row = comparison.against(Scheme.CONVENTIONAL, Scheme.SOFTWARE_ENCRYPTION)
        assert row.slowdown > 1.0
