"""Shared fixtures: small layouts and pre-wired controllers/machines.

Functional controllers use a deliberately small data region so the
Merkle tree stays shallow and pure-Python AES stays fast; nothing in the
semantics depends on region size.
"""

from __future__ import annotations

import pytest

from repro.core import FsEncrController
from repro.secmem import BaselineSecureController, MetadataLayout, SecureControllerConfig
from repro.sim import Machine, MachineConfig, Scheme


SMALL_LAYOUT_KWARGS = dict(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)


@pytest.fixture
def small_layout() -> MetadataLayout:
    return MetadataLayout(**SMALL_LAYOUT_KWARGS)


@pytest.fixture
def functional_config() -> SecureControllerConfig:
    return SecureControllerConfig(functional=True)


@pytest.fixture
def baseline_controller(small_layout, functional_config) -> BaselineSecureController:
    return BaselineSecureController(layout=small_layout, config=functional_config)


@pytest.fixture
def fsencr_controller(small_layout, functional_config) -> FsEncrController:
    return FsEncrController(layout=small_layout, config=functional_config)


@pytest.fixture
def timing_fsencr(small_layout) -> FsEncrController:
    return FsEncrController(layout=small_layout)


def make_machine(scheme: Scheme = Scheme.FSENCR, functional: bool = False, **overrides) -> Machine:
    config = MachineConfig(scheme=scheme, functional=functional, **overrides)
    machine = Machine(config)
    machine.add_user(uid=1000, gid=100, passphrase="fixture-pass")
    return machine


@pytest.fixture
def fsencr_machine() -> Machine:
    return make_machine(Scheme.FSENCR)


@pytest.fixture
def functional_machine() -> Machine:
    return make_machine(Scheme.FSENCR, functional=True)
