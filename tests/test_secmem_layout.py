"""Metadata layout: region carving and Merkle geometry."""

import pytest

from repro.mem import LINE_SIZE, PAGE_SIZE
from repro.secmem import MetadataLayout


def layout(mb=16, ott_kb=32):
    return MetadataLayout(data_bytes=mb * 1024 * 1024, ott_region_bytes=ott_kb * 1024)


class TestRegions:
    def test_regions_are_ordered_and_disjoint(self):
        lay = layout()
        assert lay.mecb_base == lay.data_bytes
        assert lay.fecb_base == lay.mecb_base + lay.counter_region_bytes
        assert lay.ott_base == lay.fecb_base + lay.counter_region_bytes
        assert lay.merkle_base == lay.ott_base + lay.ott_region_bytes

    def test_counter_region_sizes(self):
        lay = layout(mb=16)
        assert lay.num_pages == 16 * 1024 * 1024 // PAGE_SIZE
        assert lay.counter_region_bytes == lay.num_pages * LINE_SIZE

    def test_one_counter_line_per_page(self):
        lay = layout()
        assert lay.mecb_addr(1) - lay.mecb_addr(0) == LINE_SIZE
        assert lay.fecb_addr(1) - lay.fecb_addr(0) == LINE_SIZE

    def test_mecb_fecb_parallel_arrays(self):
        lay = layout()
        for page in (0, 17, lay.num_pages - 1):
            assert lay.fecb_addr(page) - lay.mecb_addr(page) == lay.counter_region_bytes

    def test_page_bounds_enforced(self):
        lay = layout()
        with pytest.raises(ValueError):
            lay.mecb_addr(-1)
        with pytest.raises(ValueError):
            lay.mecb_addr(lay.num_pages)
        with pytest.raises(ValueError):
            lay.fecb_addr(lay.num_pages)

    def test_ott_slots(self):
        lay = layout(ott_kb=32)
        assert lay.ott_slots == 32 * 1024 // LINE_SIZE
        assert lay.ott_slot_addr(0) == lay.ott_base
        with pytest.raises(ValueError):
            lay.ott_slot_addr(lay.ott_slots)

    @pytest.mark.parametrize("kwargs", [
        dict(data_bytes=4097),
        dict(data_bytes=PAGE_SIZE, ott_region_bytes=100),
        dict(data_bytes=PAGE_SIZE, merkle_arity=1),
    ])
    def test_invalid_layouts_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MetadataLayout(**kwargs)


class TestMerkleGeometry:
    def test_leaves_cover_all_protected_metadata(self):
        lay = layout()
        protected = 2 * lay.counter_region_bytes + lay.ott_region_bytes
        assert lay.merkle_leaves == protected // LINE_SIZE

    def test_leaf_index_bijective_over_regions(self):
        lay = layout()
        assert lay.merkle_leaf_index(lay.mecb_base) == 0
        assert lay.merkle_leaf_index(lay.mecb_base + LINE_SIZE) == 1
        last = lay.merkle_base - LINE_SIZE
        assert lay.merkle_leaf_index(last) == lay.merkle_leaves - 1

    def test_leaf_index_rejects_non_metadata(self):
        lay = layout()
        with pytest.raises(ValueError):
            lay.merkle_leaf_index(0)  # data region
        with pytest.raises(ValueError):
            lay.merkle_leaf_index(lay.merkle_base)  # tree region

    def test_node_addrs_above_merkle_base(self):
        lay = layout()
        assert lay.merkle_node_addr(0, 0) == lay.merkle_base
        assert lay.merkle_node_addr(1, 0) > lay.merkle_node_addr(0, 0)

    def test_node_index_bounds(self):
        lay = layout()
        with pytest.raises(ValueError):
            lay.merkle_node_addr(0, lay.merkle_leaves)  # way out of range
        with pytest.raises(ValueError):
            lay.merkle_node_addr(-1, 0)

    def test_levels_shrink_by_arity(self):
        lay = layout()
        level0_nodes = -(-lay.merkle_leaves // 8)
        span0 = lay.merkle_node_addr(1, 0) - lay.merkle_node_addr(0, 0)
        assert span0 == level0_nodes * LINE_SIZE

    def test_total_bytes_monotone_in_data(self):
        assert layout(mb=32).total_bytes > layout(mb=16).total_bytes

    def test_paper_scale_tree_depth(self):
        """Table III: 9 levels for the full 16 GB machine (8-ary)."""
        lay = MetadataLayout(data_bytes=16 * 1024 * 1024 * 1024)
        # leaves = 2*4M pages + OTT slots; ceil(log8(leaves)) == 8 internal
        # levels + the leaf level itself == 9 levels of tree structure.
        assert lay.merkle_levels == 8
