"""Whisper internals: YCSB mixes, worker interleaving, pool sizing."""

import pytest

from repro.sim import MachineConfig, Scheme
from repro.workloads import run_workload
from repro.workloads.whisper import YCSB_MIXES, YcsbWorkload, _interleave


CFG = MachineConfig(scheme=Scheme.FSENCR)


class TestYcsbMixes:
    def test_paper_default_is_a(self):
        w = YcsbWorkload(ops=10)
        assert w.mix == "A"
        assert w.read_ratio == 0.5
        assert w.name == "YCSB"

    def test_mix_names(self):
        assert YcsbWorkload(ops=10, mix="B").name == "YCSB-B"
        assert YcsbWorkload(ops=10, mix="C").name == "YCSB-C"

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            YcsbWorkload(ops=10, mix="Z")

    def test_mix_table_sane(self):
        assert YCSB_MIXES["A"] == 0.5
        assert YCSB_MIXES["C"] == 1.0
        assert all(0.0 <= ratio <= 1.0 for ratio in YCSB_MIXES.values())

    @pytest.mark.parametrize("mix", sorted(YCSB_MIXES))
    def test_all_mixes_run(self, mix):
        result = run_workload(CFG, YcsbWorkload(ops=120, mix=mix))
        assert result.elapsed_ns > 0

    def test_read_only_mix_issues_no_measured_writes(self):
        result = run_workload(CFG, YcsbWorkload(ops=200, mix="C"))
        # The measured window is reads only; residual metadata drain
        # from the fill phase is the only permissible write traffic.
        assert result.stats is not None
        assert result.nvm_writes <= result.nvm_reads

    def test_mixes_differ_in_write_traffic(self):
        heavy = run_workload(CFG, YcsbWorkload(ops=400, mix="A", seed=3))
        light = run_workload(CFG, YcsbWorkload(ops=400, mix="C", seed=3))
        assert heavy.nvm_writes > light.nvm_writes


class TestInterleave:
    def test_round_robin_two_streams(self):
        order = []
        streams = [
            [lambda i=i: order.append(("a", i)) for i in range(3)],
            [lambda i=i: order.append(("b", i)) for i in range(3)],
        ]
        for op in _interleave(streams):
            op()
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_uneven_streams_drain_fully(self):
        order = []
        streams = [
            [lambda: order.append("a")],
            [lambda: order.append("b") for _ in range(3)],
        ]
        for op in _interleave(streams):
            op()
        assert sorted(order) == ["a", "b", "b", "b"]

    def test_single_stream(self):
        calls = []
        for op in _interleave([[lambda: calls.append(1), lambda: calls.append(2)]]):
            op()
        assert calls == [1, 2]
