"""Redo-logged transactions: protocol, atomicity under crashes, workload."""

import pytest

from repro.mem import PAGE_SIZE
from repro.sim import Machine, MachineConfig, Scheme
from repro.workloads import PersistentAllocator, run_workload
from repro.workloads.transactions import (
    BankAccounts,
    BankWorkload,
    RedoLog,
    TxError,
)


def setup(functional=True, accounts=8):
    machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=functional))
    machine.add_user(uid=1000, gid=100, passphrase="pw")
    handle = machine.create_file("/pmem/bank", uid=1000, encrypted=True)
    base = machine.mmap(handle, pages=64)
    allocator = PersistentAllocator(machine, base, 64 * PAGE_SIZE)
    bank = BankAccounts(machine, allocator, accounts=accounts, opening=100)
    log = RedoLog(machine, allocator)
    return machine, bank, log


class TestProtocol:
    def test_nested_begin_rejected(self):
        _, _, log = setup()
        log.begin()
        with pytest.raises(TxError):
            log.begin()

    def test_commit_without_begin_rejected(self):
        _, _, log = setup()
        with pytest.raises(TxError):
            log.commit()

    def test_log_write_outside_tx_rejected(self):
        _, _, log = setup()
        with pytest.raises(TxError):
            log.log_write(0, bytes(8))

    def test_capacity_enforced(self):
        machine, bank, _ = setup()
        handle = machine.open_file("/pmem/bank", uid=1000)
        # A tiny log overflows quickly.
        base = machine.mmap(handle, pages=4)
        small = RedoLog(machine, PersistentAllocator(machine, base, 4 * PAGE_SIZE), capacity=1)
        small.begin()
        small.log_write(bank.addr(0), bytes(8))
        with pytest.raises(TxError):
            small.log_write(bank.addr(1), bytes(8))

    def test_abort_leaves_state_untouched(self):
        _, bank, log = setup()
        log.begin()
        log.log_write(bank.addr(0), (999).to_bytes(8, "big"))
        log.abort()
        assert bank.balance(0) == 100


class TestAtomicity:
    def test_committed_transfer_applies(self):
        _, bank, log = setup()
        bank.transfer(log, 0, 1, 25)
        assert bank.balance(0) == 75
        assert bank.balance(1) == 125

    def test_total_invariant_over_many_transfers(self):
        _, bank, log = setup(accounts=6)
        import random

        rng = random.Random(4)
        for _ in range(40):
            src, dst = rng.sample(range(6), 2)
            bank.transfer(log, src, dst, rng.randrange(1, 10))
        assert bank.total() == 6 * 100

    def test_crash_before_commit_discards(self):
        _, bank, log = setup()
        log.begin()
        log.log_write(bank.addr(0), (75).to_bytes(8, "big"))
        log.log_write(bank.addr(1), (125).to_bytes(8, "big"))
        image = log.crash()  # power fails before the commit marker
        completed = log.recover(image)
        assert completed is False
        assert bank.balance(0) == 100 and bank.balance(1) == 100
        assert bank.total() == 800

    def test_crash_after_commit_replays(self):
        _, bank, log = setup()
        log.begin()
        log.log_write(bank.addr(0), (75).to_bytes(8, "big"))
        log.log_write(bank.addr(1), (125).to_bytes(8, "big"))
        # Reach the committed state without applying (crash window
        # between marker persist and apply).
        log.machine.persist(log.log_base, 16)
        log._state = RedoLog.COMMITTED
        image = log.crash()
        completed = log.recover(image)
        assert completed is True
        assert bank.balance(0) == 75 and bank.balance(1) == 125
        assert bank.total() == 800

    def test_replay_is_idempotent(self):
        _, bank, log = setup()
        log.begin()
        log.log_write(bank.addr(0), (75).to_bytes(8, "big"))
        log.log_write(bank.addr(1), (125).to_bytes(8, "big"))
        log.machine.persist(log.log_base, 16)
        log._state = RedoLog.COMMITTED
        image = log.crash()
        log.recover(image)
        log.recover(image)  # a second replay must change nothing
        assert bank.total() == 800

    def test_log_never_holds_plaintext_on_dimm(self):
        """The redo log lives in the encrypted file too: its records on
        the DIMM are sealed like everything else."""
        machine, bank, log = setup()
        secret_value = (0xDEADBEEF).to_bytes(8, "big")
        log.begin()
        log.log_write(bank.addr(0), secret_value)
        log.commit()
        residue = b"".join(machine.controller.store.scan().values())
        assert secret_value not in residue


class TestBankWorkload:
    def test_runs_and_counts(self):
        cfg = MachineConfig(scheme=Scheme.FSENCR)
        result = run_workload(cfg, BankWorkload(accounts=32, transfers=150))
        assert result.elapsed_ns > 0
        assert result.nvm_writes > 0  # persist-dense by construction

    def test_deterministic(self):
        cfg = MachineConfig(scheme=Scheme.FSENCR)
        a = run_workload(cfg, BankWorkload(accounts=32, transfers=100, seed=5))
        b = run_workload(cfg, BankWorkload(accounts=32, transfers=100, seed=5))
        assert a.elapsed_ns == b.elapsed_ns

    def test_fsencr_overhead_in_band(self):
        from repro.workloads import compare_schemes

        cmp = compare_schemes(
            lambda: BankWorkload(accounts=64, transfers=300),
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        row = cmp.against(Scheme.BASELINE_SECURE, Scheme.FSENCR)
        assert 0.97 < row.slowdown < 1.4

    def test_validation(self):
        with pytest.raises(ValueError):
            BankWorkload(accounts=1)
