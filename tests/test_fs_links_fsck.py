"""rename/link semantics, hard-link-aware deletion, and fsck."""

import pytest

from repro.fs import AccessDenied, DaxFilesystem, FsError
from repro.kernel import MMIORegisters
from repro.mem import PAGE_SIZE


class _Target:
    def __init__(self):
        self.revoked = []

    def install_file_key(self, group_id, file_id, key):
        pass

    def revoke_file_key(self, group_id, file_id):
        self.revoked.append((group_id, file_id))

    def update_fecb(self, page, group_id, file_id):
        pass

    def admin_login(self, credential_digest):
        return True


def make_fs(pages=32):
    target = _Target()
    fs = DaxFilesystem(
        pmem_base=1024 * PAGE_SIZE,
        pmem_bytes=pages * PAGE_SIZE,
        mmio=MMIORegisters(target=target),
    )
    fs.users.add_user(1000, 100)
    fs.users.add_user(2000, 200)
    fs.keyring.login(1000, "alice")
    return fs, target


class TestRename:
    def test_rename_moves_name(self):
        fs, _ = make_fs()
        fs.create("/a", uid=1000)
        fs.rename("/a", "/b", uid=1000)
        assert not fs.exists("/a") and fs.exists("/b")

    def test_rename_keeps_inode_and_data_pages(self):
        fs, _ = make_fs()
        handle, _ = fs.create("/a", uid=1000)
        fs.fault_in(handle, 0)
        ino = handle.inode.i_ino
        fs.rename("/a", "/b", uid=1000)
        assert fs.stat("/b").i_ino == ino
        assert fs.stat("/b").extents

    def test_rename_replaces_destination(self):
        fs, _ = make_fs()
        fs.create("/a", uid=1000)
        doomed, _ = fs.create("/b", uid=1000)
        fs.rename("/a", "/b", uid=1000)
        assert fs.stat("/b").i_ino != doomed.inode.i_ino

    def test_rename_requires_write_access(self):
        fs, _ = make_fs()
        fs.create("/a", uid=1000, mode=0o644)
        with pytest.raises(AccessDenied):
            fs.rename("/a", "/b", uid=2000)

    def test_rename_missing(self):
        fs, _ = make_fs()
        with pytest.raises(FsError):
            fs.rename("/nope", "/b", uid=1000)


class TestHardLinks:
    def test_link_shares_inode(self):
        fs, _ = make_fs()
        handle, _ = fs.create("/a", uid=1000)
        fs.link("/a", "/also-a", uid=1000)
        assert fs.stat("/also-a").i_ino == handle.inode.i_ino
        assert handle.inode.nlink == 2

    def test_link_existing_destination_rejected(self):
        fs, _ = make_fs()
        fs.create("/a", uid=1000)
        fs.create("/b", uid=1000)
        with pytest.raises(FsError):
            fs.link("/a", "/b", uid=1000)

    def test_unlink_one_name_keeps_data(self):
        fs, target = make_fs()
        handle, _ = fs.create("/a", uid=1000, encrypted=True)
        fs.fault_in(handle, 0)
        fs.link("/a", "/b", uid=1000)
        fs.unlink("/a", uid=1000)
        assert fs.exists("/b")
        assert fs.stat("/b").extents  # pages survive
        assert target.revoked == []  # key survives too

    def test_last_unlink_frees_and_revokes(self):
        fs, target = make_fs()
        handle, _ = fs.create("/a", uid=1000, encrypted=True)
        fs.fault_in(handle, 0)
        free_before = fs.free_bytes
        fs.link("/a", "/b", uid=1000)
        fs.unlink("/a", uid=1000)
        fs.unlink("/b", uid=1000)
        assert len(target.revoked) == 1
        assert fs.free_bytes == free_before + PAGE_SIZE


class TestFsck:
    def test_clean_filesystem(self):
        fs, _ = make_fs()
        handle, _ = fs.create("/a", uid=1000)
        fs.fault_in(handle, 0)
        fs.link("/a", "/b", uid=1000)
        assert fs.fsck() == []

    def test_detects_double_allocation(self):
        fs, _ = make_fs()
        a, _ = fs.create("/a", uid=1000)
        b, _ = fs.create("/b", uid=1000)
        fs.fault_in(a, 0)
        b.inode.extents[0] = a.inode.extents[0]  # corruption
        problems = fs.fsck()
        assert any("shared by" in p for p in problems)

    def test_detects_allocated_and_free(self):
        fs, _ = make_fs()
        a, _ = fs.create("/a", uid=1000)
        fs.fault_in(a, 0)
        fs._free_pages.append(a.inode.extents[0])  # corruption
        assert any("both allocated and free" in p for p in fs.fsck())

    def test_detects_bad_nlink(self):
        fs, _ = make_fs()
        a, _ = fs.create("/a", uid=1000)
        a.inode.nlink = 5
        assert any("nlink" in p for p in fs.fsck())

    def test_detects_out_of_region_extent(self):
        fs, _ = make_fs()
        a, _ = fs.create("/a", uid=1000)
        a.inode.extents[0] = 5  # below pmem base
        a.inode.ensure_size(PAGE_SIZE)
        assert any("outside the PMEM region" in p for p in fs.fsck())

    def test_detects_short_size(self):
        fs, _ = make_fs()
        a, _ = fs.create("/a", uid=1000)
        fs.fault_in(a, 3)
        a.inode.size = 10  # corruption
        assert any("below extent end" in p for p in fs.fsck())

    def test_detects_dangling_name(self):
        fs, _ = make_fs()
        fs.create("/a", uid=1000)
        fs._namespace["/ghost"] = 9999
        assert any("dangling" in p for p in fs.fsck())

    def test_fsck_clean_after_heavy_churn(self):
        fs, _ = make_fs(pages=64)
        for i in range(12):
            handle, _ = fs.create(f"/f{i}", uid=1000, encrypted=(i % 2 == 0))
            for page in range(i % 4 + 1):
                fs.fault_in(handle, page)
        for i in range(0, 12, 3):
            fs.unlink(f"/f{i}", uid=1000)
        for i in range(1, 12, 3):
            fs.rename(f"/f{i}", f"/g{i}", uid=1000)
        assert fs.fsck() == []
