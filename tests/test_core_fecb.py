"""File Encryption Counter Blocks: stamping, recycling, serialisation."""

import pytest

from repro.core import FECBlock, FECBStore


class TestFECBlock:
    def test_unstamped_initially(self):
        assert not FECBlock().stamped

    def test_stamp_binds_identity(self):
        blk = FECBlock()
        reset = blk.stamp(group_id=5, file_id=42)
        assert not reset  # fresh block, nothing to reset
        assert blk.stamped and blk.ident == (5, 42)

    def test_restamp_same_file_keeps_counters(self):
        blk = FECBlock()
        blk.stamp(5, 42)
        blk.counters.bump(0)
        assert blk.stamp(5, 42) is False
        assert blk.counters.value_for(0) == (0, 1)

    def test_recycle_to_other_file_resets_counters(self):
        blk = FECBlock()
        blk.stamp(5, 42)
        blk.counters.bump(0)
        assert blk.stamp(5, 43) is True
        assert blk.counters.value_for(0) == (0, 0)

    def test_invalidate_clears_everything(self):
        blk = FECBlock()
        blk.stamp(5, 42)
        blk.counters.bump(0)
        blk.invalidate()
        assert not blk.stamped
        assert blk.counters.value_for(0) == (0, 0)

    def test_id_width_validation(self):
        blk = FECBlock()
        with pytest.raises(ValueError):
            blk.stamp(1 << 18, 0)
        with pytest.raises(ValueError):
            blk.stamp(0, 1 << 14)

    def test_fecb_major_is_32_bits(self):
        assert FECBlock().counters.major_limit == 1 << 32

    def test_serialize_includes_ids(self):
        """§VI: the ID fields must be integrity-protected too — they are
        part of the hashed serialisation."""
        a, b = FECBlock(), FECBlock()
        a.stamp(5, 42)
        b.stamp(5, 43)
        assert a.serialize() != b.serialize()

    def test_serialize_includes_counters(self):
        blk = FECBlock()
        blk.stamp(5, 42)
        before = blk.serialize()
        blk.counters.bump(0)
        assert blk.serialize() != before


class TestFECBStore:
    def test_block_materialises(self):
        store = FECBStore()
        assert store.peek(3) is None
        assert store.block(3) is store.block(3)
        assert store.peek(3) is not None

    def test_stamped_pages(self):
        store = FECBStore()
        store.block(1).stamp(5, 42)
        store.block(2).stamp(5, 42)
        store.block(3).stamp(5, 99)
        assert sorted(store.stamped_pages(5, 42)) == [1, 2]
        assert store.stamped_pages(9, 9) == []

    def test_invalidated_pages_drop_out(self):
        store = FECBStore()
        store.block(1).stamp(5, 42)
        store.block(1).invalidate()
        assert store.stamped_pages(5, 42) == []

    def test_snapshot_restore(self):
        store = FECBStore()
        store.block(1).stamp(5, 42)
        store.block(1).counters.bump(3)
        snap = store.snapshot()
        store.block(1).counters.bump(3)
        store.block(9).stamp(6, 7)
        store.restore(snap)
        assert store.block(1).counters.value_for(3) == (0, 1)
        assert store.peek(9) is None
