"""Per-rule unit tests for repro.lint.

Each rule gets at least one positive fixture (must flag) and one
negative fixture (must stay quiet), all as small inline sources written
into a scratch tree whose layout mirrors the real package (rules scope
themselves by path).  The suppression and baseline mechanisms are
round-tripped through the CLI's JSON output.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import RULES
from repro.lint.baseline import Baseline, split_findings
from repro.lint.cli import main as lint_main
from repro.lint.config import DEFAULTS, load_config
from repro.lint.engine import SourceFile, lint_sources


def lint_snippet(tmp_path: Path, rel: str, source: str, rule: str = None):
    """Write ``source`` at ``tmp_path/rel`` and lint it; returns findings."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    src = SourceFile.parse(target, tmp_path)
    rules = [RULES[rule]] if rule else list(RULES.values())
    findings, _ = lint_sources([src], tmp_path, rules, dict(DEFAULTS))
    return findings


def lint_tree(tmp_path: Path, files: dict, rule: str = None):
    """Write several files, lint them all together (cross-file rules)."""
    sources = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        sources.append(SourceFile.parse(target, tmp_path))
    rules = [RULES[rule]] if rule else list(RULES.values())
    findings, suppressed = lint_sources(sources, tmp_path, rules, dict(DEFAULTS))
    return findings, suppressed


def test_registry_has_all_fourteen_rules():
    assert set(RULES) == {
        "bit-width-bounds",
        "counter-overflow-handled",
        "no-wallclock-or-unseeded-rng",
        "no-worker-seed-entropy",
        "integer-cycle-accounting",
        "key-hygiene",
        "key-material-taint",
        "persist-reaches-wpq",
        "persist-through-wpq",
        "stats-flow",
        "stats-registered",
        "worker-entropy-reachability",
        "config-not-component",
        "builder-owns-wiring",
    }
    for rule in RULES.values():
        assert rule.summary and rule.contract


# -- bit-width-bounds ----------------------------------------------------


def test_bit_width_flags_literal_mask_and_shift(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/core/x.py",
        """
        GROUP_ID_BITS = 18
        ident = 12345
        group = ident >> 14
        masked = ident & 0x3FFFF
        """,
        rule="bit-width-bounds",
    )
    messages = [f.message for f in findings]
    assert any("duplicates the GROUP_ID_BITS mask" in m for m in messages)
    # 14 is not declared anywhere in this scratch tree, so the shift is fine.
    assert not any("shift by literal 14" in m for m in messages)


def test_bit_width_flags_shift_by_declared_width(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/core/x.py",
        """
        FILE_ID_BITS = 14
        GROUP_ID_BITS = 18
        def pack(group_id, file_id):
            return (group_id << 14) | file_id
        """,
        rule="bit-width-bounds",
    )
    assert any("shift by literal 14 duplicates FILE_ID_BITS" in f.message for f in findings)


def test_bit_width_flags_oversized_id_literal(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/core/x.py",
        """
        FILE_ID_BITS = 14
        def make(cls):
            return cls(file_id=99999)
        """,
        rule="bit-width-bounds",
    )
    assert any("does not fit file_id" in f.message for f in findings)


def test_bit_width_quiet_when_constants_used(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/core/x.py",
        """
        GROUP_ID_BITS = 18
        FILE_ID_BITS = 14
        def pack(group_id, file_id):
            mask = (1 << GROUP_ID_BITS) - 1
            return ((group_id & mask) << FILE_ID_BITS) | file_id
        def make(cls):
            return cls(file_id=1, group_id=3)
        """,
        rule="bit-width-bounds",
    )
    assert findings == []


def test_bit_width_resolves_import_alias(tmp_path):
    """A width imported under a different *_BITS name still bounds IDs."""
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/core/defs.py": """
                SLOT_BITS = 21
                """,
            "src/repro/secmem/user.py": """
                from repro.core.defs import SLOT_BITS as TAG_BITS
                def make(cls):
                    return cls(tag=3000000)
                """,
        },
        rule="bit-width-bounds",
    )
    assert any(
        "does not fit tag" in f.message and "TAG_BITS = 21 bits" in f.message
        for f in findings
    )


def test_bit_width_resolves_assignment_alias(tmp_path):
    """``X_BITS = mod.Y_BITS`` re-bindings inherit the declared width."""
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/core/defs.py": """
                GROUP_ID_BITS = 18
                """,
            "src/repro/core/user.py": """
                from repro.core import defs
                TENANT_BITS = defs.GROUP_ID_BITS
                def make(cls):
                    return cls(tenant=300000)
                """,
        },
        rule="bit-width-bounds",
    )
    assert any(
        "does not fit tenant" in f.message and "TENANT_BITS = 18 bits" in f.message
        for f in findings
    )


def test_bit_width_alias_chain_is_file_order_independent(tmp_path):
    """Alias-of-alias resolves even when the alias file indexes first."""
    findings, _ = lint_tree(
        tmp_path,
        {
            # "a" sorts (and is written) before the defining module.
            "src/repro/core/a_user.py": """
                from repro.core.mid import WAY_BITS as LANE_BITS
                def make(cls):
                    return cls(lane=3000000)
                """,
            "src/repro/core/mid.py": """
                from repro.core.z_defs import SLOT_BITS as WAY_BITS
                """,
            "src/repro/core/z_defs.py": """
                SLOT_BITS = 21
                """,
        },
        rule="bit-width-bounds",
    )
    assert any("does not fit lane" in f.message for f in findings)


def test_bit_width_unresolvable_alias_stays_quiet(tmp_path):
    """An alias of an unknown constant neither crashes nor bounds anything."""
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/core/user.py": """
                from somewhere.else_ import MYSTERY_BITS as TAG_BITS
                def make(cls):
                    return cls(tag=3000000)
                """,
        },
        rule="bit-width-bounds",
    )
    assert findings == []


# -- counter-overflow-handled -------------------------------------------


def test_counter_overflow_flags_direct_minor_write(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/core/x.py",
        """
        def touch(block, i):
            block.minors[i] += 1
        """,
        rule="counter-overflow-handled",
    )
    assert any("bypasses the overflow path" in f.message for f in findings)


def test_counter_overflow_flags_ignored_bump_result(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/secmem/x.py",
        """
        def write(block, i):
            block.bump(i)
        """,
        rule="counter-overflow-handled",
    )
    assert any("result discarded" in f.message for f in findings)


def test_counter_overflow_quiet_for_consumed_bump_and_load(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/secmem/x.py",
        """
        def write(block, i, reencrypt):
            if block.bump(i):
                reencrypt()
        def restore(block, major, minors):
            block.load(major, minors)
        """,
        rule="counter-overflow-handled",
    )
    assert findings == []


def test_counter_overflow_allows_counters_module_itself(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/secmem/counters.py",
        """
        class CounterBlock:
            def reset(self):
                self.minors = [0] * 64
        """,
        rule="counter-overflow-handled",
    )
    assert findings == []


# -- no-wallclock-or-unseeded-rng ---------------------------------------


def test_determinism_flags_wallclock_and_global_rng(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import random
        import time
        def now():
            return time.time()
        def pick():
            return random.randint(0, 7)
        """,
        rule="no-wallclock-or-unseeded-rng",
    )
    messages = " | ".join(f.message for f in findings)
    assert "time.time" in messages and "random.randint" in messages


def test_determinism_flags_from_import_alias(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/mem/x.py",
        """
        from time import perf_counter as clock
        def now():
            return clock()
        """,
        rule="no-wallclock-or-unseeded-rng",
    )
    assert any("time.perf_counter" in f.message for f in findings)


def test_determinism_allows_seeded_rng_and_other_layers(tmp_path):
    quiet = lint_snippet(
        tmp_path,
        "src/repro/sim/x.py",
        """
        import random
        def rng(seed):
            return random.Random(seed)
        """,
        rule="no-wallclock-or-unseeded-rng",
    )
    assert quiet == []
    # Outside the deterministic layers (e.g. analysis) wall clock is fine.
    elsewhere = lint_snippet(
        tmp_path,
        "src/repro/analysis/x.py",
        """
        import time
        def stamp():
            return time.time()
        """,
        rule="no-wallclock-or-unseeded-rng",
    )
    assert elsewhere == []


# -- no-worker-seed-entropy ---------------------------------------------


def test_worker_seed_flags_pid_and_time_derived_seeds(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/exec/x.py",
        """
        import os
        import random
        import time
        def bad_rng():
            return random.Random(os.getpid())
        def bad_assign():
            worker_seed = int(time.time()) ^ 0xBEEF
            return worker_seed
        def bad_keyword(run):
            return run(seed=time.time_ns())
        """,
        rule="no-worker-seed-entropy",
    )
    messages = " | ".join(f.message for f in findings)
    assert "os.getpid()" in messages
    assert "time.time()" in messages
    assert "time.time_ns()" in messages
    assert len(findings) == 3


def test_worker_seed_flags_from_import_alias(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/exec/x.py",
        """
        from os import getpid as pid
        import random
        def rng():
            return random.Random(pid())
        """,
        rule="no-worker-seed-entropy",
    )
    assert any("os.getpid()" in f.message for f in findings)


def test_worker_seed_allows_wall_timing_and_spec_seeds(tmp_path):
    # The runner's whole point is timing cells on the host clock — only
    # *seeding* from entropy is banned in worker paths.
    quiet = lint_snippet(
        tmp_path,
        "src/repro/exec/x.py",
        """
        import time
        import random
        def timed(spec, fn):
            start = time.perf_counter()
            rng = random.Random(spec.seed)
            payload = fn(rng)
            return payload, time.perf_counter() - start
        """,
        rule="no-worker-seed-entropy",
    )
    assert quiet == []
    # Outside worker paths the rule does not apply at all.
    elsewhere = lint_snippet(
        tmp_path,
        "src/repro/analysis/x.py",
        """
        import os
        import random
        def rng():
            return random.Random(os.getpid())
        """,
        rule="no-worker-seed-entropy",
    )
    assert elsewhere == []


# -- integer-cycle-accounting -------------------------------------------


def test_cycle_accounting_flags_float_increment(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/mem/x.py",
        """
        def charge(self, latency):
            self.stats.add("cycles", 2.5)
            self.stats.add("more", latency * 1.5)
        """,
        rule="integer-cycle-accounting",
    )
    assert len(findings) == 2
    assert all("integer-exact" in f.message for f in findings)


def test_cycle_accounting_quiet_for_ints_and_non_stats(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/mem/x.py",
        """
        def charge(self, seen):
            self.stats.add("hits")
            self.stats.add("lines", 4)
            seen.add(2.5)  # a plain set, not a StatCounters
        """,
        rule="integer-cycle-accounting",
    )
    assert findings == []


# -- key-hygiene ---------------------------------------------------------


def test_key_hygiene_flags_repr_fstring_and_weak_hash(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/crypto/x.py",
        """
        import hashlib
        from dataclasses import dataclass

        @dataclass
        class Entry:
            file_key: bytes

        def debug(key):
            return f"key is {key}"

        def digest(data):
            return hashlib.md5(data).digest()
        """,
        rule="key-hygiene",
    )
    messages = " | ".join(f.message for f in findings)
    assert "auto-repr would print it" in messages
    assert "f-string" in messages
    assert "hashlib.md5" in messages


def test_key_hygiene_quiet_for_hidden_fields_and_metadata(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/crypto/x.py",
        """
        import hashlib
        from dataclasses import dataclass, field

        @dataclass
        class Entry:
            file_key: bytes = field(repr=False)

        def check(key):
            # len(key) is derived metadata, not the key itself.
            raise ValueError(f"key must be 16 bytes, got {len(key)}")

        def digest(data):
            return hashlib.sha256(data).digest()
        """,
        rule="key-hygiene",
    )
    assert findings == []


def test_key_hygiene_ignores_non_crypto_layers(tmp_path):
    # Workload "keys" are KV-store keys, not key material.
    findings = lint_snippet(
        tmp_path,
        "src/repro/workloads/x.py",
        """
        def missing(key):
            return f"pre-filled key {key} missing"
        """,
        rule="key-hygiene",
    )
    assert findings == []


# -- persist-through-wpq -------------------------------------------------


def test_wpq_flags_raw_store_write_outside_controllers(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/workloads/x.py",
        """
        def poke(machine):
            machine.controller.store.write_line(0x1000, b"x" * 64)
            machine.controller.device.write(0x1000)
        """,
        rule="persist-through-wpq",
    )
    assert len(findings) == 2


def test_wpq_allows_controller_layer_reads_and_writes(tmp_path):
    quiet = lint_snippet(
        tmp_path,
        "src/repro/secmem/x.py",
        """
        def seal(self, addr, data):
            self.store.write_line(addr, data)

        def peek(self, addr):
            return self.store.read_line(addr)
        """,
        rule="persist-through-wpq",
    )
    assert quiet == []


def test_wpq_flags_raw_reads_outside_controllers(tmp_path):
    # A raw ciphertext read outside the controller layer bypasses
    # decryption and integrity verification; deliberate attacker-view
    # reads carry an inline suppression.
    reads = lint_snippet(
        tmp_path,
        "src/repro/analysis/x.py",
        """
        def attacker_view(controller, addr):
            return controller.store.read_line(addr)
        """,
        rule="persist-through-wpq",
    )
    assert len(reads) == 1
    assert "read_line" in reads[0].message
    suppressed = lint_snippet(
        tmp_path,
        "src/repro/analysis/y.py",
        """
        def attacker_view(controller, addr):
            return controller.store.read_line(addr)  # repro-lint: disable=persist-through-wpq
        """,
        rule="persist-through-wpq",
    )
    assert suppressed == []


# -- stats-registered ----------------------------------------------------


def test_stats_registered_flags_orphan_component(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/comp.py": """
                class Widget:
                    def __init__(self, size, stats=None):
                        self.stats = stats
            """,
            "src/repro/sim/mach.py": """
                from ..mem.stats import StatsRegistry
                from ..mem.comp import Widget
                class Machine:
                    def __init__(self):
                        self.registry = StatsRegistry()
                        self.widget = Widget(4)
            """,
        },
        rule="stats-registered",
    )
    assert any("Widget constructed without a stats bundle" in f.message for f in findings)


def test_stats_registered_quiet_when_bundle_passed(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/comp.py": """
                class Widget:
                    def __init__(self, size, stats=None):
                        self.stats = stats
            """,
            "src/repro/sim/mach.py": """
                from ..mem.stats import StatsRegistry
                from ..mem.comp import Widget
                class Machine:
                    def __init__(self):
                        self.registry = StatsRegistry()
                        self.kw = Widget(4, stats=self.registry.create("w"))
                        self.pos = Widget(4, self.registry.create("w2"))
            """,
        },
        rule="stats-registered",
    )
    assert findings == []


def test_stats_registered_is_project_wide(tmp_path):
    # The rule runs everywhere, not only in modules that reference
    # StatsRegistry by name: orphan bundles are typically created in
    # helper modules *away* from the registry.
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/comp.py": """
                class Widget:
                    def __init__(self, size, stats=None):
                        self.stats = stats
            """,
            "src/repro/kernel/other.py": """
                from ..mem.comp import Widget
                def helper():
                    return Widget(4)
            """,
        },
        rule="stats-registered",
    )
    assert any("Widget constructed without a stats bundle" in f.message for f in findings)


# -- config-not-component ------------------------------------------------


def test_config_not_component_flags_benchmark_construction(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/core/ott.py": """
                class OpenTunnelTable:
                    def __init__(self, banks=8):
                        self.banks = banks
            """,
            "benchmarks/bench_x.py": """
                from repro.core.ott import OpenTunnelTable
                def run():
                    return OpenTunnelTable(banks=1)
            """,
        },
        rule="config-not-component",
    )
    assert any("constructs component OpenTunnelTable" in f.message for f in findings)


def test_config_not_component_allows_configs_and_src_usage(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/core/ott.py": """
                class OpenTunnelTable:
                    def __init__(self, banks=8):
                        self.banks = banks
                class OTTConfig:
                    pass
            """,
            # Value/config types are fine in benchmarks...
            "benchmarks/bench_x.py": """
                from repro.core.ott import OTTConfig
                def run():
                    return OTTConfig()
            """,
            # ...and components are fine outside benchmark paths.
            "src/repro/sim/mach.py": """
                from ..core.ott import OpenTunnelTable
                def build():
                    return OpenTunnelTable()
            """,
        },
        rule="config-not-component",
    )
    assert findings == []


# -- builder-owns-wiring --------------------------------------------------


def test_builder_owns_wiring_flags_construction_outside_builder(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "src/repro/analysis/adhoc.py",
        """
        from ..core.fsencr import FsEncrController
        from ..secmem.anubis import ShadowTable
        def probe(layout):
            controller = FsEncrController(layout=layout)
            controller.anubis_shadow = ShadowTable(capacity=4, base_addr=0)
            return controller
        """,
        rule="builder-owns-wiring",
    )
    assert len(findings) == 2
    assert any("FsEncrController constructed outside" in f.message for f in findings)
    assert any("ShadowTable constructed outside" in f.message for f in findings)


def test_builder_owns_wiring_quiet_in_builder_tests_and_devices(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            # The builder module is the one sanctioned construction site.
            "src/repro/sim/build.py": """
                from ..core.fsencr import FsEncrController
                from ..fs.dax import DaxFilesystem
                def build_controller(layout):
                    return FsEncrController(layout=layout)
                def build_filesystem(machine):
                    return DaxFilesystem(machine)
            """,
            # Unit tests construct components white-box by design.
            "tests/test_white_box.py": """
                from repro.secmem.anubis import ShadowTable
                def test_table():
                    assert ShadowTable(capacity=1, base_addr=0).occupancy == 0
            """,
            # NVMDevice is deliberately outside the wired set.
            "src/repro/analysis/probe.py": """
                from ..mem.nvm import NVMDevice
                def fresh_device():
                    return NVMDevice()
            """,
        },
        rule="builder-owns-wiring",
    )
    assert findings == []


# -- suppressions, baseline, CLI round-trip ------------------------------


def test_inline_suppression_same_line_and_line_above(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/sim/x.py": """
                import time
                def a():
                    return time.time()  # repro-lint: disable=no-wallclock-or-unseeded-rng
                def b():
                    # repro-lint: disable=all
                    return time.time()
                def c():
                    return time.time()
            """
        },
        rule="no-wallclock-or-unseeded-rng",
    )
    assert suppressed == 2
    assert len(findings) == 1 and findings[0].line == 9


def test_unrelated_suppression_does_not_hide(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/sim/x.py": """
                import time
                def a():
                    return time.time()  # repro-lint: disable=key-hygiene
            """
        },
        rule="no-wallclock-or-unseeded-rng",
    )
    assert suppressed == 0 and len(findings) == 1


def _write_violation_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n\ndef now():\n    return time.time()\n", encoding="utf-8"
    )
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\npaths = ["src"]\n', encoding="utf-8"
    )
    return tmp_path


def test_cli_baseline_round_trip_through_json(tmp_path, capsys):
    root = _write_violation_tree(tmp_path)

    # 1. The violation fails the run and shows up in the JSON stream.
    code = lint_main(["--root", str(root), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["exit_code"] == 1
    new = [f for f in payload["findings"] if f["status"] == "new"]
    assert len(new) == 1 and new[0]["rule"] == "no-wallclock-or-unseeded-rng"

    # 2. Accept it into the baseline; the run becomes clean.
    assert lint_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    code = lint_main(["--root", str(root), "--format", "json", "--strict"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["summary"]["baselined"] == 1 and payload["summary"]["new"] == 0

    # 3. Fix the violation: strict mode now fails on the stale entry...
    (root / "src" / "repro" / "sim" / "bad.py").write_text(
        "def now(clock_ns):\n    return clock_ns\n", encoding="utf-8"
    )
    code = lint_main(["--root", str(root), "--format", "json", "--strict"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1 and payload["summary"]["stale_baseline"] == 1

    # ...while the non-strict run keeps passing.
    assert lint_main(["--root", str(root)]) == 0


def test_baseline_matching_ignores_line_numbers(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {"src/repro/sim/x.py": "import time\n\ndef f():\n    return time.time()\n"},
        rule="no-wallclock-or-unseeded-rng",
    )
    baseline = Baseline.from_findings(findings)
    shifted, _ = lint_tree(
        tmp_path,
        {"src/repro/sim/y.py": "import time\n\n\n\n\ndef f():\n    return time.time()\n"},
        rule="no-wallclock-or-unseeded-rng",
    )
    # Same rule+message, different path: must NOT match the baseline.
    new, matched, stale = split_findings(shifted, baseline)
    assert len(new) == 1 and matched == [] and len(stale) == 1
    # Same path, shifted line: must match.
    moved = [f for f in findings]
    relocated = [type(f)(f.rule, f.path, f.line + 40, f.col, f.message) for f in moved]
    new, matched, stale = split_findings(relocated, baseline)
    assert new == [] and len(matched) == 1 and stale == []


def test_cli_select_ignore_and_errors(tmp_path, capsys):
    root = _write_violation_tree(tmp_path)
    assert lint_main(["--root", str(root), "--select", "key-hygiene"]) == 0
    capsys.readouterr()
    assert lint_main(["--root", str(root), "--ignore", "no-wallclock-or-unseeded-rng"]) == 0
    capsys.readouterr()
    assert lint_main(["--root", str(root), "--select", "no-such-rule"]) == 2
    assert lint_main(["--root", str(root / "missing-dir"), ]) == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == set(RULES)


def test_config_table_overrides_defaults(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        textwrap.dedent(
            """
            [tool.repro-lint]
            paths = ["elsewhere"]
            mask-min-bits = 20
            """
        ),
        encoding="utf-8",
    )
    options = load_config(tmp_path)
    assert options["paths"] == ["elsewhere"]
    assert options["mask-min-bits"] == 20
    # Untouched keys keep their defaults.
    assert options["baseline"] == DEFAULTS["baseline"]


def test_config_fallback_parser_matches_subset():
    from repro.lint.config import _parse_toml_subset

    parsed = _parse_toml_subset(
        textwrap.dedent(
            """
            [project]
            name = "repro"

            [tool.repro-lint]
            paths = [
                "src",
                "benchmarks",
            ]
            mask-min-bits = 14
            strict = true
            baseline = ".repro-lint-baseline.json"
            """
        )
    )
    table = parsed["tool.repro-lint"]
    assert table["paths"] == ["src", "benchmarks"]
    assert table["mask-min-bits"] == 14
    assert table["strict"] is True
    assert table["baseline"] == ".repro-lint-baseline.json"
