"""Whole-program flow analysis: the four cross-module rules, the
incremental index cache, and the CLI satellites built on top
(``--format sarif``, ``--changed``, ``--prune-baseline``, ``--graph``).

Each flow rule gets the same treatment: a positive fixture where the
offending flow crosses a module boundary, a suppressed variant (the
suppression must sit on the *sink* line — the source line does not
count), and a clean fixture exercising the sanctioned idiom.
"""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

from repro.lint import RULES
from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main
from repro.lint.config import DEFAULTS
from repro.lint.engine import SourceFile, lint_sources
from repro.lint.flow import build_flow


def lint_tree(tmp_path: Path, files: dict, rule: str = None):
    sources = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        sources.append(SourceFile.parse(target, tmp_path))
    rules = [RULES[rule]] if rule else list(RULES.values())
    findings, suppressed = lint_sources(sources, tmp_path, rules, dict(DEFAULTS))
    return findings, suppressed


# -- key-material-taint --------------------------------------------------


KEY_SOURCE = """
    def generate_fek():
        return b"\\x00" * 16
"""


def test_key_taint_flags_two_hop_fstring_leak(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                from repro.crypto.keys import generate_fek

                def leak():
                    fek = generate_fek()
                    return f"fek={fek}"
            """,
        },
        rule="key-material-taint",
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "src/repro/sim/report.py"
    assert "generate_fek() key material" in finding.message
    assert "formatted string" in finding.message


def test_key_taint_flags_stats_and_exception_sinks(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                from repro.crypto.keys import generate_fek

                class Reporter:
                    def count(self):
                        fek = generate_fek()
                        self.stats.add("keys", fek)

                    def explode(self):
                        fek = generate_fek()
                        raise ValueError(fek)
            """,
        },
        rule="key-material-taint",
    )
    sinks = sorted(f.message.rsplit("into ", 1)[1] for f in findings)
    assert sinks == ["a StatCounters counter", "an exception message"]


def test_key_taint_suppression_counts_at_sink_not_source(tmp_path):
    # Suppressing the *source* line must not hide the sink finding...
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                from repro.crypto.keys import generate_fek

                def leak():
                    fek = generate_fek()  # repro-lint: disable=key-material-taint
                    return f"fek={fek}"
            """,
        },
        rule="key-material-taint",
    )
    assert len(findings) == 1 and suppressed == 0

    # ...while the same comment on the sink line suppresses it.
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                from repro.crypto.keys import generate_fek

                def leak():
                    fek = generate_fek()
                    return f"fek={fek}"  # repro-lint: disable=key-material-taint
            """,
        },
        rule="key-material-taint",
    )
    assert findings == [] and suppressed == 1


def test_key_taint_allows_digest_declassification(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                import hashlib

                from repro.crypto.keys import generate_fek

                def fingerprint():
                    fek = generate_fek()
                    digest = hashlib.sha256(fek).hexdigest()
                    return f"fp={digest}"
            """,
        },
        rule="key-material-taint",
    )
    assert findings == []


# -- worker-entropy-reachability -----------------------------------------


def test_worker_entropy_flags_transitive_clock_read(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/exec/spec.py": """
                from repro.sim.helper import step

                def execute_cell(spec):
                    return step(spec)
            """,
            "src/repro/sim/helper.py": """
                import time

                def step(spec):
                    return time.time()
            """,
        },
        rule="worker-entropy-reachability",
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "src/repro/sim/helper.py"
    assert "host clock" in finding.message
    assert "execute_cell -> step" in finding.message


def test_worker_entropy_suppressed_at_call_site(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/exec/spec.py": """
                from repro.sim.helper import step

                def execute_cell(spec):
                    return step(spec)
            """,
            "src/repro/sim/helper.py": """
                import time

                def step(spec):
                    return time.time()  # repro-lint: disable=worker-entropy-reachability
            """,
        },
        rule="worker-entropy-reachability",
    )
    assert findings == [] and suppressed == 1


def test_worker_entropy_allows_seeded_rng_and_unreachable_clock(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/exec/spec.py": """
                from repro.sim.helper import step

                def execute_cell(spec):
                    return step(spec)
            """,
            "src/repro/sim/helper.py": """
                import random
                import time

                def step(spec):
                    rng = random.Random(spec)
                    return rng.random()

                def timed_wrapper():
                    # Reads the clock but is not reachable from the entry.
                    return time.time()
            """,
        },
        rule="worker-entropy-reachability",
    )
    assert findings == []


# -- persist-reaches-wpq -------------------------------------------------


WPQ_ENGINE = """
    class Engine:
        def __init__(self, wpq):
            self.wpq = wpq

        def tick(self, now):
            return self.wpq.accept(now)
"""


def test_persist_flags_write_disconnected_from_wpq(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/engine.py": WPQ_ENGINE,
            "src/repro/mem/dev.py": """
                class Device:
                    def __init__(self, store):
                        self.store = store

                    def sneak(self, addr, data):
                        self.store.write_line(addr, data)
            """,
        },
        rule="persist-reaches-wpq",
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "src/repro/mem/dev.py"
    assert "Device.sneak" in finding.message
    assert "write-pending queue" in finding.message


def test_persist_allows_write_sharing_ancestor_with_wpq(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/engine.py": WPQ_ENGINE,
            "src/repro/mem/dev.py": """
                class Device:
                    def __init__(self, store):
                        self.store = store

                    def sneak(self, addr, data):
                        self.store.write_line(addr, data)
            """,
            "src/repro/mem/driver.py": """
                def flush(engine, device):
                    engine.tick(0)
                    device.sneak(1, b"x")
            """,
        },
        rule="persist-reaches-wpq",
    )
    assert findings == []


def test_persist_suppression_on_write_line(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/mem/engine.py": WPQ_ENGINE,
            "src/repro/mem/dev.py": """
                class Device:
                    def __init__(self, store):
                        self.store = store

                    def sneak(self, addr, data):
                        self.store.write_line(addr, data)  # repro-lint: disable=persist-reaches-wpq
            """,
        },
        rule="persist-reaches-wpq",
    )
    assert findings == [] and suppressed == 1


def test_persist_ignores_files_outside_nvm_write_paths(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/engine.py": WPQ_ENGINE,
            "src/repro/analysis/probe.py": """
                class Probe:
                    def __init__(self, store):
                        self.store = store

                    def install(self, addr, data):
                        self.store.write_line(addr, data)
            """,
        },
        rule="persist-reaches-wpq",
    )
    assert findings == []


# -- stats-flow ----------------------------------------------------------


WIDGET = """
    from repro.mem.stats import StatCounters

    class Widget:
        def __init__(self):
            self.stats = StatCounters("widget")

        def poke(self):
            self.stats.add("pokes")
"""


def test_stats_flow_flags_unregistered_bundle(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {"src/repro/mem/widget.py": WIDGET},
        rule="stats-flow",
    )
    assert len(findings) == 1
    finding = findings[0]
    assert "Widget" in finding.message and "'widget'" in finding.message
    assert "never appear in a RunResult" in finding.message


def test_stats_flow_cleared_by_cross_module_registration(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/widget.py": WIDGET,
            "src/repro/sim/wiring.py": """
                def build(registry):
                    return registry.create("widget")
            """,
        },
        rule="stats-flow",
    )
    assert findings == []


def test_stats_flow_checks_dotted_stat_consumers(tmp_path):
    findings, _ = lint_tree(
        tmp_path,
        {
            "src/repro/mem/widget.py": WIDGET,
            "src/repro/sim/wiring.py": """
                def build(registry):
                    return registry.create("widget")
            """,
            "src/repro/analysis/readers.py": """
                def read_ok(result):
                    return result.stat("widget.pokes")

                def read_missing_counter(result):
                    return result.stat("widget.misses")

                def read_missing_bundle(result):
                    return result.stat("ghost.count")
            """,
        },
        rule="stats-flow",
    )
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "counter 'misses'" in messages[1]
    assert "bundle 'ghost'" in messages[0]


def test_stats_flow_suppressed_at_add_site(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/mem/widget.py": """
                from repro.mem.stats import StatCounters

                class Widget:
                    def __init__(self):
                        self.stats = StatCounters("widget")

                    def poke(self):
                        self.stats.add("pokes")  # repro-lint: disable=stats-flow
            """
        },
        rule="stats-flow",
    )
    assert findings == [] and suppressed == 1


# -- suppression edge cases ----------------------------------------------


def test_multi_rule_suppression_on_one_line(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                from repro.crypto.keys import generate_fek

                def leak():
                    fek = generate_fek()
                    return f"fek={fek}"  # repro-lint: disable=key-material-taint, key-hygiene
            """,
        },
        rule="key-material-taint",
    )
    assert findings == [] and suppressed == 1


def test_suppression_whitespace_variants(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                from repro.crypto.keys import generate_fek

                def tight():
                    fek = generate_fek()
                    return f"a={fek}"  #repro-lint:disable=key-material-taint

                def spaced():
                    fek = generate_fek()
                    return f"b={fek}"  #   repro-lint:   disable=key-material-taint
            """,
        },
        rule="key-material-taint",
    )
    assert findings == [] and suppressed == 2


def test_suppression_above_sink_covers_multiline_call(tmp_path):
    findings, suppressed = lint_tree(
        tmp_path,
        {
            "src/repro/crypto/keys.py": KEY_SOURCE,
            "src/repro/sim/report.py": """
                from repro.crypto.keys import generate_fek

                def leak():
                    fek = generate_fek()
                    # repro-lint: disable=key-material-taint
                    return f"fek={fek}"
            """,
        },
        rule="key-material-taint",
    )
    assert findings == [] and suppressed == 1


# -- incremental index cache ---------------------------------------------


def _flow_options(tmp_path: Path) -> dict:
    options = dict(DEFAULTS)
    options["paths"] = ["src"]
    options["flow-index-dir"] = str(tmp_path / ".idx")
    return options


def _write_tree(tmp_path: Path) -> None:
    for rel, source in {
        "src/repro/a.py": "def one():\n    return 1\n",
        "src/repro/b.py": "from repro.a import one\n\ndef two():\n    return one() + 1\n",
    }.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


def test_warm_flow_build_serves_from_index_cache(tmp_path):
    _write_tree(tmp_path)
    options = _flow_options(tmp_path)

    cold = build_flow(tmp_path, options, [])
    assert cold.cache_stats.misses == 2 and cold.cache_stats.hits == 0

    warm = build_flow(tmp_path, options, [])
    assert warm.cache_stats.hits == 2 and warm.cache_stats.misses == 0
    assert warm.graph.stats == cold.graph.stats


def test_incremental_rebuild_reparses_only_changed_file(tmp_path):
    _write_tree(tmp_path)
    options = _flow_options(tmp_path)
    build_flow(tmp_path, options, [])

    (tmp_path / "src/repro/a.py").write_text(
        "def one():\n    return 42\n", encoding="utf-8"
    )
    rebuilt = build_flow(tmp_path, options, [])
    assert rebuilt.cache_stats.hits == 1 and rebuilt.cache_stats.misses == 1


def test_index_cache_disabled_by_empty_dir_option(tmp_path):
    _write_tree(tmp_path)
    options = _flow_options(tmp_path)
    options["flow-index-dir"] = ""
    build_flow(tmp_path, options, [])
    again = build_flow(tmp_path, options, [])
    assert again.cache_stats.hits == 0 and again.cache_stats.misses == 2
    assert not (tmp_path / ".idx").exists()


# -- CLI satellites ------------------------------------------------------


def _violation_root(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n\ndef now():\n    return time.time()\n", encoding="utf-8"
    )
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\npaths = ["src"]\n', encoding="utf-8"
    )
    return tmp_path


def test_cli_sarif_output(tmp_path, capsys):
    root = _violation_root(tmp_path)
    code = lint_main(["--root", str(root), "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    result = run["results"][0]
    assert result["ruleId"] == "no-wallclock-or-unseeded-rng"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/sim/bad.py"
    assert location["region"]["startLine"] == 4
    ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert ids == {"no-wallclock-or-unseeded-rng"}


def test_cli_sarif_marks_baselined_as_suppressed(tmp_path, capsys):
    root = _violation_root(tmp_path)
    assert lint_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    code = lint_main(["--root", str(root), "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    result = payload["runs"][0]["results"][0]
    assert result["suppressions"][0]["kind"] == "external"


def test_cli_prune_baseline_keeps_reasons_for_live_debt(tmp_path, capsys):
    root = _violation_root(tmp_path)
    extra = root / "src" / "repro" / "sim" / "worse.py"
    extra.write_text(
        "import time\n\ndef later():\n    return time.time()\n", encoding="utf-8"
    )
    assert lint_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()

    # Annotate both entries with reasons, as a maintainer would.
    baseline_path = root / str(DEFAULTS["baseline"])
    raw = json.loads(baseline_path.read_text(encoding="utf-8"))
    for item in raw["findings"]:
        item["reason"] = f"legacy clock read in {item['path']}"
    baseline_path.write_text(json.dumps(raw), encoding="utf-8")

    # Pay off one entry; prune must drop it and keep the other's reason.
    extra.write_text("def later(clock_ns):\n    return clock_ns\n", encoding="utf-8")
    assert lint_main(["--root", str(root), "--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 stale entry" in out

    pruned = Baseline.load(baseline_path)
    assert sum(pruned.entries.values()) == 1
    (fingerprint,) = pruned.entries
    assert fingerprint[1] == "src/repro/sim/bad.py"
    assert pruned.reasons[fingerprint] == "legacy clock read in src/repro/sim/bad.py"
    assert lint_main(["--root", str(root), "--strict"]) == 0


def test_cli_write_baseline_preserves_reasons(tmp_path, capsys):
    root = _violation_root(tmp_path)
    assert lint_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    baseline_path = root / str(DEFAULTS["baseline"])
    raw = json.loads(baseline_path.read_text(encoding="utf-8"))
    raw["findings"][0]["reason"] = "known debt"
    baseline_path.write_text(json.dumps(raw), encoding="utf-8")

    assert lint_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    reloaded = Baseline.load(baseline_path)
    assert list(reloaded.reasons.values()) == ["known debt"]


def test_cli_stale_baseline_warning_mentions_prune(tmp_path, capsys):
    root = _violation_root(tmp_path)
    assert lint_main(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    (root / "src" / "repro" / "sim" / "bad.py").write_text(
        "def now(clock_ns):\n    return clock_ns\n", encoding="utf-8"
    )
    assert lint_main(["--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "warning: stale-baseline" in out and "--prune-baseline" in out


def _git(root: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=root,
        check=True,
        capture_output=True,
    )


def test_cli_changed_lints_changed_files_and_dependents(tmp_path, capsys):
    root = tmp_path
    files = {
        "src/repro/base.py": "def base():\n    return 1\n",
        "src/repro/user.py": (
            "from repro.base import base\n\ndef use():\n    return base()\n"
        ),
        "src/repro/sim/lone.py": "import time\n\ndef now():\n    return time.time()\n",
    }
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    (root / "pyproject.toml").write_text(
        '[tool.repro-lint]\npaths = ["src"]\n', encoding="utf-8"
    )
    _git(root, "init", "-q")
    _git(root, "add", ".")
    _git(root, "commit", "-qm", "seed")

    # Nothing changed: --changed lints nothing and passes even though
    # lone.py has a violation.
    code = lint_main(["--root", str(root), "--changed", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0 and payload["summary"]["files"] == 0

    # Touch the leaf: the dependent is re-linted too, the unrelated
    # violating file still is not.
    (root / "src/repro/base.py").write_text(
        "def base():\n    return 2\n", encoding="utf-8"
    )
    code = lint_main(["--root", str(root), "--changed", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["summary"]["files"] == 2

    # Touch the violating file itself: now it fails.
    (root / "src/repro/sim/lone.py").write_text(
        "import time\n\ndef now():\n    return time.time() + 1\n", encoding="utf-8"
    )
    code = lint_main(["--root", str(root), "--changed", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {f["path"] for f in payload["findings"]} == {"src/repro/sim/lone.py"}


def test_cli_graph_dump(tmp_path, capsys):
    root = _violation_root(tmp_path)
    code = lint_main(["--root", str(root), "--graph"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["stats"]["modules"] >= 1
    assert "repro.sim.bad" in payload["modules"]
    assert "index_cache" in payload


def test_cli_json_summary_carries_flow_stats(tmp_path, capsys):
    root = _violation_root(tmp_path)
    code = lint_main(
        ["--root", str(root), "--format", "json", "--select", "stats-flow"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    flow = payload["summary"]["flow"]
    assert flow["graph"]["modules"] >= 1
    assert flow["index_cache"]["files"] >= 1
