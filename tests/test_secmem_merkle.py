"""Bonsai Merkle tree: path geometry, tamper detection, rebuild."""

import pytest

from repro.mem import LINE_SIZE
from repro.secmem import BonsaiMerkleTree, IntegrityError, MetadataLayout


@pytest.fixture
def small_setup():
    layout = MetadataLayout(data_bytes=4 * 1024 * 1024, ott_region_bytes=4096)
    leaves = {}

    def reader(index):
        return leaves.get(index, bytes(LINE_SIZE))

    tree = BonsaiMerkleTree(layout, leaf_reader=reader)
    return layout, leaves, tree


class TestGeometry:
    def test_path_is_leaf_side_first(self, small_setup):
        layout, _, tree = small_setup
        path = tree.path_to_root(layout.mecb_base)
        assert path == sorted(path) or len(path) == len(set(path))
        assert len(path) == tree.num_levels

    def test_sibling_leaves_share_path(self, small_setup):
        layout, _, tree = small_setup
        a = tree.path_to_root(layout.mecb_base)
        b = tree.path_to_root(layout.mecb_base + LINE_SIZE)
        assert a == b  # siblings under the same level-0 parent

    def test_distant_leaves_converge(self, small_setup):
        layout, _, tree = small_setup
        a = tree.path_to_root(layout.mecb_base)
        b = tree.path_to_root(layout.merkle_base - LINE_SIZE)
        assert a[-1] == b[-1]  # same top node
        assert a[0] != b[0]

    def test_non_metadata_address_rejected(self, small_setup):
        _, _, tree = small_setup
        with pytest.raises(ValueError):
            tree.path_to_root(0)


class TestFunctionalIntegrity:
    def test_verify_default_leaf(self, small_setup):
        layout, _, tree = small_setup
        tree.verify_leaf(layout.mecb_base)  # untouched leaf verifies

    def test_update_then_verify(self, small_setup):
        layout, leaves, tree = small_setup
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        tree.verify_leaf(layout.mecb_base)

    def test_root_changes_on_update(self, small_setup):
        layout, leaves, tree = small_setup
        before = tree.root
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        assert tree.root != before

    def test_tamper_detected(self, small_setup):
        layout, leaves, tree = small_setup
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        leaves[0] = b"\x22" * LINE_SIZE  # tamper without update
        with pytest.raises(IntegrityError):
            tree.verify_leaf(layout.mecb_base)

    def test_replay_detected(self, small_setup):
        """Restoring an old value after a newer update must fail —
        the replay attack counter-mode cannot survive."""
        layout, leaves, tree = small_setup
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        leaves[0] = b"\x22" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        leaves[0] = b"\x11" * LINE_SIZE  # replay the old value
        with pytest.raises(IntegrityError):
            tree.verify_leaf(layout.mecb_base)

    def test_sibling_tamper_detected(self, small_setup):
        layout, leaves, tree = small_setup
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        leaves[1] = b"\x99" * LINE_SIZE  # tamper an untouched sibling
        with pytest.raises(IntegrityError):
            tree.verify_leaf(layout.mecb_base + LINE_SIZE)

    def test_independent_subtrees_unaffected(self, small_setup):
        layout, leaves, tree = small_setup
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        far = layout.merkle_base - LINE_SIZE
        tree.verify_leaf(far)  # distant default leaf still verifies

    def test_requires_leaf_reader_for_hashing(self):
        layout = MetadataLayout(data_bytes=4 * 1024 * 1024, ott_region_bytes=4096)
        tree = BonsaiMerkleTree(layout)  # no reader
        tree2 = BonsaiMerkleTree(layout)
        assert tree.root == tree2.root  # geometry-only trees agree
        with pytest.raises(RuntimeError):
            tree._leaf_digest(0)


class TestRebuild:
    def test_rebuild_preserves_valid_state(self, small_setup):
        layout, leaves, tree = small_setup
        for i in range(5):
            leaves[i] = bytes([i + 1]) * LINE_SIZE
            tree.update_leaf(layout.mecb_base + i * LINE_SIZE)
        before = tree.root
        assert tree.rebuild_root() == before

    def test_rebuild_after_out_of_band_changes(self, small_setup):
        """Crash recovery: counters recovered by Osiris changed leaf
        content; rebuild recomputes a consistent root."""
        layout, leaves, tree = small_setup
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        leaves[0] = b"\x22" * LINE_SIZE  # recovered to a newer value
        tree.rebuild_root()
        tree.verify_leaf(layout.mecb_base)

    def test_stats_counted(self, small_setup):
        layout, leaves, tree = small_setup
        leaves[0] = b"\x11" * LINE_SIZE
        tree.update_leaf(layout.mecb_base)
        tree.verify_leaf(layout.mecb_base)
        assert tree.stats.get("leaf_updates") == 1
        assert tree.stats.get("verifications") == 1
