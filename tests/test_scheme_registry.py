"""Scheme registry + MachineBuilder: declarative columns, bit-identical machines.

Three contracts in one module:

1. **Bit-identity.**  The builder refactor must be invisible in the
   numbers: machines built through the registry produce results
   byte-for-byte equal to the seed implementation's, pinned here as
   sha256 digests of canonical result JSON.
2. **Cache-key stability.**  Every pre-existing ``CellSpec`` must keep
   its pre-existing content hash (the ``.repro-cache`` of a seed
   checkout stays valid), while new variant columns get new keys.
3. **Extension.**  ``fsencr+anubis`` and ``fsencr+partitioned`` exist
   purely as registry entries — these tests prove the declared columns
   build, run, crash, and recover end-to-end.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.exec.spec import CellSpec, canonical_json, cell_key
from repro.faults.plan import FAULT_PROFILES, FaultPlan
from repro.faults.sweep import matrix_configs
from repro.sim.build import MachineBuilder, build_machine
from repro.sim.config import MachineConfig, Scheme
from repro.sim.machine import Machine
from repro.sim.schemes import (
    SchemeSpec,
    all_specs,
    canonical_scheme_name,
    comparison_pair,
    crash_matrix_names,
    get_scheme,
    motivation_pair,
    scheme_names,
    spec_for_config,
)
from repro.workloads import make_whisper_workload
from repro.workloads.base import run_workload

LINE = 64

#: sha256 of the canonical result JSON of ``run_workload`` with
#: Hashmap/ops=300 on each legacy scheme's default config — captured on
#: the seed implementation.  The builder must never move these.
GOLDEN_RUN_DIGESTS = {
    "conventional": "d6dd478e445a7e5a7ede87b21d432ff62b1dbf35c32ec7c242c8dfb960f47836",
    "ext4dax_plain": "4fced5c7f693d00c019f98d90510d1903f8a30b2df39089d351170a670dce13f",
    "software_encryption": "e5cc6e38f30f4980f59557b014c4d41f6b3baf0b1e2f7f8b0f81ff4c985f4cf1",
    "baseline_secure": "01f8732067f5ca3c4c35ab138439315f52c68683e4ec814222698c26e4e9744e",
    "fsencr": "9ef252c954f21f90d3841d1ea569704dd742ad058ab951d63257e041068e0857",
}

#: Canonical-JSON sha256 of the sweep cells the crash matrix built on
#: the seed (workload DAX-3, default base, seed 0xC0FFEE).  These are
#: the content addresses of cached matrix results, so the registry
#: re-route must reproduce them exactly.
GOLDEN_SWEEP_CELL_HASHES = {
    ("fsencr", "counter-flips"): "c8bd5b282441606fcb7d6cc42f9336ccbf6c205ebe9b471a17fd25bfd54f0208",
    ("fsencr", "mixed"): "3a0fe783d74f7a62273989ede3378f37a85a4794889bc9fa2735c7812f6ee4e0",
    ("fsencr", "torn-burst"): "bfa3138f545c6f9b1bfa44e7b7b2feb7bb475b7e021edea8dd9969b4869c6cea",
    ("baseline_secure", "counter-flips"): "83e0958552b46ebc9aab43dcc5e43725b73ea6b7c1bc3ce377e1622b408d3914",
    ("baseline_secure", "mixed"): "3408be7130ec78d54ff01d7a296514bd113feeb28d175e13fc75d1cc8b3228d2",
    ("baseline_secure", "torn-burst"): "5cdbfe6e515de95aa4ffa5f4e69517d033f87d4d5f3df0a5c72faa44d8638457",
    ("fsencr+wpq", "counter-flips"): "ba68e1f55dc760a6536b735ab239c314f4bdaf1ed0205258cf3d08e14b461193",
    ("fsencr+wpq", "mixed"): "fba180cfd8a39e2a792741f0c6b710fcc06e7b37fc0764d6f8b3adbd760d38d1",
    ("fsencr+wpq", "torn-burst"): "20f980a1f101edb5ccf29c4f732f53e6285ab1e0fa049c204913efbb0fd6653a",
}


def result_digest(scheme_name: str) -> str:
    config = get_scheme(scheme_name).configure(MachineConfig())
    result = run_workload(config, make_whisper_workload("Hashmap", ops=300))
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class TestRegistry:
    def test_legacy_columns_registered(self):
        assert set(GOLDEN_RUN_DIGESTS) <= set(scheme_names())

    def test_canonicalisation_accepts_name_enum_and_spec(self):
        assert canonical_scheme_name("fsencr") == "fsencr"
        assert canonical_scheme_name(" FsEncr ") == "fsencr"
        assert canonical_scheme_name(Scheme.BASELINE_SECURE) == "baseline_secure"
        assert canonical_scheme_name(get_scheme("fsencr+wpq")) == "fsencr+wpq"

    def test_unknown_scheme_lists_registered_names(self):
        with pytest.raises(ValueError, match="fsencr"):
            canonical_scheme_name("nvme-of")

    def test_roles_resolve_to_figure_pairs(self):
        assert comparison_pair() == ("baseline_secure", "fsencr")
        assert motivation_pair() == ("ext4dax_plain", "software_encryption")

    def test_crash_matrix_order_is_declared_not_hardcoded(self):
        assert crash_matrix_names() == (
            "fsencr",
            "baseline_secure",
            "fsencr+wpq",
            "fsencr+anubis",
        )
        assert [name for name, _cfg in matrix_configs()] == list(crash_matrix_names())

    def test_variant_pins_project_onto_base_config(self):
        base = MachineConfig()
        wpq = get_scheme("fsencr+wpq").configure(base)
        assert wpq.model_wpq and wpq.scheme is Scheme.FSENCR
        anubis = get_scheme("fsencr+anubis").configure(base)
        assert anubis.anubis_recovery
        # The transform sizes the shadow to mirror the metadata cache.
        cache = anubis.metadata_cache
        assert anubis.anubis_shadow_lines == cache.size_bytes // cache.line_size
        part = get_scheme("fsencr+partitioned").configure(base)
        assert part.metadata_cache.partitioned
        # The plain column pins its identity *off* on variant bases.
        assert not get_scheme("fsencr").configure(anubis).anubis_recovery

    def test_spec_for_config_picks_most_specific_variant(self):
        assert spec_for_config(MachineConfig()).name == "fsencr"
        assert spec_for_config(get_scheme("fsencr+anubis").configure(None)).name == "fsencr+anubis"
        assert spec_for_config(MachineConfig(scheme=Scheme.CONVENTIONAL)).name == "conventional"

    def test_controller_kind_is_validated(self):
        with pytest.raises(ValueError, match="controller kind"):
            SchemeSpec(name="x", scheme=Scheme.FSENCR, label="x", controller="quantum")


class TestBuilder:
    def test_every_registered_scheme_builds_and_runs(self):
        for spec in all_specs():
            machine = build_machine(spec.name, MachineConfig(functional=True))
            assert machine.scheme_spec.name == spec.name
            machine.add_user(uid=1000, gid=100, passphrase="pw")
            handle = machine.create_file(
                "/pmem/f", uid=1000, encrypted=spec.has_file_encryption
            )
            base = machine.mmap(handle, pages=1)
            machine.store_bytes(base, b"\xab" * LINE)
            machine.persist(base, LINE)
            assert machine.load_bytes(base, LINE) == b"\xab" * LINE

    def test_machine_rejects_conflicting_config_and_builder(self):
        builder = MachineBuilder(get_scheme("fsencr"))
        with pytest.raises(ValueError, match="conflicting"):
            Machine(MachineConfig(scheme=Scheme.CONVENTIONAL), builder=builder)

    @pytest.mark.parametrize("scheme_name", sorted(GOLDEN_RUN_DIGESTS))
    def test_builder_machines_bit_identical_to_seed(self, scheme_name):
        assert result_digest(scheme_name) == GOLDEN_RUN_DIGESTS[scheme_name]


class TestCacheKeyStability:
    def test_compare_cell_canonical_hash_unchanged(self):
        spec = CellSpec(
            kind="compare",
            workload="Hashmap",
            config=MachineConfig(),
            ops=1500,
            schemes=("baseline_secure", "fsencr"),
        )
        digest = hashlib.sha256(canonical_json(spec).encode()).hexdigest()
        assert digest == "bde45f19163187447de7038c0a6e43cd36364301dc7fbc896e0ff9b398302b82"
        assert cell_key(spec, "fixed-fingerprint") == (
            "f110829115534c9789bafadbb3851697bbffc6ec76dc35e0d28b851dd747e711"
        )

    def test_fig15_cell_canonical_hash_unchanged(self):
        spec = CellSpec(
            kind="compare",
            workload="DAX-2",
            config=MachineConfig().with_metadata_cache(4096),
            iterations=6000,
            schemes=("baseline_secure", "fsencr"),
        )
        digest = hashlib.sha256(canonical_json(spec).encode()).hexdigest()
        assert digest == "8999987c556a076fbd9b0454a4a92b07274a703f74bbb8997a93d5392cee361e"

    def test_matrix_sweep_cells_keep_their_hashes(self):
        seen = {}
        for name, config in matrix_configs():
            for profile_name in sorted(FAULT_PROFILES):
                spec = CellSpec(
                    kind="sweep",
                    workload="DAX-3",
                    config=config,
                    plan=FAULT_PROFILES[profile_name].with_seed(0xC0FFEE),
                    max_points=8,
                    sweep_seed=0xC0FFEE,
                    name="DAX-3",
                )
                seen[(name, profile_name)] = hashlib.sha256(
                    canonical_json(spec).encode()
                ).hexdigest()
        for key, digest in GOLDEN_SWEEP_CELL_HASHES.items():
            assert seen[key] == digest, key
        # The new column exists and keys differently from plain fsencr.
        for profile_name in sorted(FAULT_PROFILES):
            anubis_key = seen[("fsencr+anubis", profile_name)]
            assert anubis_key not in GOLDEN_SWEEP_CELL_HASHES.values()

    def test_cellspec_canonicalises_scheme_spellings(self):
        by_enum = CellSpec(
            kind="compare",
            workload="Hashmap",
            config=MachineConfig(),
            schemes=(Scheme.BASELINE_SECURE, "  FSENCR "),
        )
        by_name = CellSpec(
            kind="compare",
            workload="Hashmap",
            config=MachineConfig(),
            schemes=("baseline_secure", "fsencr"),
        )
        assert by_enum.schemes == ("baseline_secure", "fsencr")
        assert canonical_json(by_enum) == canonical_json(by_name)

    def test_cellspec_rejects_unregistered_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            CellSpec(
                kind="compare",
                workload="Hashmap",
                config=MachineConfig(),
                schemes=("fsencr+vapourware",),
            )


def _staged_machine(scheme_name: str, stores: int = 41):
    """A functional machine with ``stores`` persisted line writes.

    41 deliberately: counter stop-loss is 4, and an exact multiple would
    persist the final update and retire every Anubis shadow entry —
    leaving nothing for recovery to prove anything about.
    """
    machine = build_machine(scheme_name, MachineConfig(functional=True))
    machine.add_user(uid=1000, gid=100, passphrase="pw")
    handle = machine.create_file("/pmem/f", uid=1000, encrypted=True)
    base = machine.mmap(handle, pages=1)
    for i in range(stores):
        addr = base + (i % 8) * LINE
        machine.store_bytes(addr, bytes([1 + (i % 250)]) * LINE)
        machine.persist(addr, LINE)
    return machine


class TestAnubisColumn:
    def test_shadow_tracks_unpersisted_counters_at_runtime(self):
        machine = _staged_machine("fsencr+anubis")
        shadow = machine.controller.anubis_shadow
        assert shadow is not None
        assert shadow.occupancy > 0
        assert shadow.stats.stat("shadow_writes") > 0
        # Plain fsencr keeps the shadow entirely out of the machine.
        plain = build_machine("fsencr", MachineConfig(functional=True))
        assert plain.controller.anubis_shadow is None

    def test_clean_drain_recovery_restores_from_shadow(self):
        machine = _staged_machine("fsencr+anubis")
        machine.crash(FaultPlan(seed=7, drain_fraction=1.0))
        report = machine.reboot()
        assert report.anubis_lines_restored > 0
        assert report.failed_lines == ()

        baseline = _staged_machine("fsencr")
        baseline.crash(FaultPlan(seed=7, drain_fraction=1.0))
        baseline_report = baseline.reboot()
        assert baseline_report.anubis_lines_restored == 0
        # Shadow-restored counters skip Osiris's upward trial search, so
        # the Anubis column recovers with strictly fewer trials.
        assert report.trials < baseline_report.trials

    def test_shadow_resets_and_machine_survives_reboot(self):
        machine = _staged_machine("fsencr+anubis")
        machine.crash(FaultPlan(seed=11, drain_fraction=1.0))
        machine.reboot()
        assert machine.controller.anubis_shadow.occupancy == 0
        assert machine.controller._anubis_counters == {}
        handle = machine.create_file("/pmem/g", uid=1000, encrypted=True)
        base = machine.mmap(handle, pages=1)
        machine.store_bytes(base, b"\x5a" * LINE)
        machine.persist(base, LINE)
        assert machine.load_bytes(base, LINE) == b"\x5a" * LINE

    def test_lossy_crash_accounts_every_line_loudly(self):
        """Anubis installs *live* counter values, so data writes dropped
        in flight (sealed under older counters) must fail ECC loudly —
        possibly with more explicit failures than Osiris-only fsencr,
        never with silent resurrection.  Every checked line lands in
        recovered-or-failed; none vanish from the accounting."""
        machine = _staged_machine("fsencr+anubis")
        machine.crash(FaultPlan(seed=7, drain_fraction=0.3, torn_probability=0.4))
        report = machine.reboot()
        assert report.lines_checked > 0
        assert report.lines_recovered + len(report.failed_lines) == report.lines_checked

    def test_sweep_audit_finds_no_silent_corruption(self):
        """The full line-by-line audit (sweep_workload reads back every
        line against recorded truth) on the fsencr+anubis column."""
        from repro.faults.sweep import sweep_workload
        from repro.workloads import make_dax_micro

        config = get_scheme("fsencr+anubis").configure(MachineConfig())
        sweep = sweep_workload(
            lambda: make_dax_micro("DAX-3", iterations=200),
            config,
            plan=FAULT_PROFILES["mixed"].with_seed(0xC0FFEE),
            max_points=2,
            name="DAX-3",
        )
        assert len(sweep.points) == 2
        assert sweep.silent_corruptions == 0
        assert sweep.scheme == "fsencr"  # column label lives in the matrix key
