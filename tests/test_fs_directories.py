"""Directory semantics: mkdir -p, readdir, rmdir, implicit parents."""

import pytest

from repro.fs import DaxFilesystem, FsError
from repro.mem import PAGE_SIZE


def make_fs():
    fs = DaxFilesystem(pmem_base=1024 * PAGE_SIZE, pmem_bytes=16 * PAGE_SIZE)
    fs.users.add_user(1000, 100)
    fs.keyring.login(1000, "pw")
    return fs


class TestMkdir:
    def test_mkdir_and_is_dir(self):
        fs = make_fs()
        fs.mkdir("/data", uid=1000)
        assert fs.is_dir("/data")
        assert fs.is_dir("/")

    def test_mkdir_p_creates_ancestors(self):
        fs = make_fs()
        fs.mkdir("/a/b/c", uid=1000)
        assert fs.is_dir("/a") and fs.is_dir("/a/b") and fs.is_dir("/a/b/c")

    def test_relative_path_rejected(self):
        with pytest.raises(FsError):
            make_fs().mkdir("data", uid=1000)

    def test_mkdir_over_file_rejected(self):
        fs = make_fs()
        fs.create("/x", uid=1000)
        with pytest.raises(FsError):
            fs.mkdir("/x", uid=1000)

    def test_create_over_dir_rejected(self):
        fs = make_fs()
        fs.mkdir("/d", uid=1000)
        with pytest.raises(FsError):
            fs.create("/d", uid=1000)

    def test_create_materialises_parents(self):
        fs = make_fs()
        fs.create("/pmem/db/shard0", uid=1000)
        assert fs.is_dir("/pmem") and fs.is_dir("/pmem/db")


class TestReaddir:
    def test_lists_immediate_children_only(self):
        fs = make_fs()
        fs.create("/d/a", uid=1000)
        fs.create("/d/b", uid=1000)
        fs.create("/d/sub/c", uid=1000)
        assert fs.readdir("/d") == ["a", "b", "sub"]

    def test_root_listing(self):
        fs = make_fs()
        fs.create("/top", uid=1000)
        fs.mkdir("/etc", uid=1000)
        assert fs.readdir("/") == ["etc", "top"]

    def test_empty_directory(self):
        fs = make_fs()
        fs.mkdir("/empty", uid=1000)
        assert fs.readdir("/empty") == []

    def test_not_a_directory(self):
        fs = make_fs()
        with pytest.raises(FsError):
            fs.readdir("/nope")

    def test_trailing_slash_tolerated(self):
        fs = make_fs()
        fs.create("/d/a", uid=1000)
        assert fs.readdir("/d/") == ["a"]


class TestRmdir:
    def test_remove_empty(self):
        fs = make_fs()
        fs.mkdir("/gone", uid=1000)
        fs.rmdir("/gone", uid=1000)
        assert not fs.is_dir("/gone")

    def test_refuse_non_empty(self):
        fs = make_fs()
        fs.create("/d/a", uid=1000)
        with pytest.raises(FsError):
            fs.rmdir("/d", uid=1000)

    def test_empty_after_unlink_removable(self):
        fs = make_fs()
        fs.create("/d/a", uid=1000)
        fs.unlink("/d/a", uid=1000)
        fs.rmdir("/d", uid=1000)
        assert not fs.is_dir("/d")

    def test_root_protected(self):
        with pytest.raises(FsError):
            make_fs().rmdir("/", uid=1000)

    def test_missing_directory(self):
        with pytest.raises(FsError):
            make_fs().rmdir("/nope", uid=1000)


class TestInterplay:
    def test_rename_across_directories(self):
        fs = make_fs()
        fs.create("/a/file", uid=1000)
        fs.mkdir("/b", uid=1000)
        fs.rename("/a/file", "/b/file", uid=1000)
        assert fs.readdir("/a") == []
        assert fs.readdir("/b") == ["file"]

    def test_fsck_still_clean_with_directories(self):
        fs = make_fs()
        handle, _ = fs.create("/x/y/z", uid=1000)
        fs.fault_in(handle, 0)
        fs.mkdir("/other", uid=1000)
        assert fs.fsck() == []
