"""Persistent data structures: correctness against reference models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import PAGE_SIZE
from repro.sim import Machine, MachineConfig, Scheme
from repro.workloads import (
    PersistentAllocator,
    PersistentBTree,
    PersistentCritbitTree,
    PersistentHashmap,
    PoolExhausted,
)


def machine_and_pool(pages=512):
    machine = Machine(MachineConfig(scheme=Scheme.BASELINE_SECURE))
    machine.add_user(uid=1000, gid=100, passphrase="p")
    handle = machine.create_file("/pmem/pool", uid=1000)
    base = machine.mmap(handle, pages=pages)
    return machine, PersistentAllocator(machine, base, pages * PAGE_SIZE)


class TestAllocator:
    def test_alloc_distinct_addresses(self):
        _, alloc = machine_and_pool()
        a, b = alloc.alloc(100), alloc.alloc(100)
        assert a != b and abs(a - b) >= 100

    def test_free_then_reuse_same_class(self):
        _, alloc = machine_and_pool()
        a = alloc.alloc(100)
        alloc.free(a, 100)
        assert alloc.alloc(100) == a

    def test_size_classes_separate(self):
        _, alloc = machine_and_pool()
        a = alloc.alloc(40)
        alloc.free(a, 40)
        big = alloc.alloc(400)  # different class: no reuse
        assert big != a

    def test_live_object_accounting(self):
        _, alloc = machine_and_pool()
        a = alloc.alloc(10)
        alloc.alloc(10)
        assert alloc.live_objects == 2
        alloc.free(a, 10)
        assert alloc.live_objects == 1

    def test_exhaustion(self):
        _, alloc = machine_and_pool(pages=1)
        with pytest.raises(PoolExhausted):
            for _ in range(100):
                alloc.alloc(256)

    def test_invalid_size(self):
        _, alloc = machine_and_pool()
        with pytest.raises(ValueError):
            alloc.alloc(0)

    def test_allocation_charges_persists(self):
        machine, alloc = machine_and_pool()
        t = machine.elapsed_ns
        alloc.alloc(64)
        assert machine.elapsed_ns > t


class TestBTree:
    def test_put_get(self):
        machine, alloc = machine_and_pool()
        tree = PersistentBTree(machine, alloc)
        tree.put(5, 64)
        assert tree.get(5) == 64
        assert tree.get(6) is None

    def test_update_value_size(self):
        machine, alloc = machine_and_pool()
        tree = PersistentBTree(machine, alloc)
        tree.put(5, 64)
        tree.put(5, 128)
        assert tree.get(5) == 128
        assert tree.size == 1

    def test_many_inserts_with_splits(self):
        machine, alloc = machine_and_pool(pages=2048)
        tree = PersistentBTree(machine, alloc)
        keys = list(range(300))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.put(k, 64)
        for k in keys:
            assert tree.get(k) == 64, f"key {k} lost"
        assert tree.keys_inorder() == sorted(keys)

    def test_sequential_inserts(self):
        machine, alloc = machine_and_pool(pages=2048)
        tree = PersistentBTree(machine, alloc)
        for k in range(200):
            tree.put(k, 64)
        assert tree.keys_inorder() == list(range(200))

    def test_reverse_inserts(self):
        machine, alloc = machine_and_pool(pages=2048)
        tree = PersistentBTree(machine, alloc)
        for k in reversed(range(200)):
            tree.put(k, 64)
        assert tree.keys_inorder() == list(range(200))

    @given(keys=st.lists(st.integers(0, 10_000), min_size=1, max_size=120, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_matches_dict_property(self, keys):
        machine, alloc = machine_and_pool(pages=2048)
        tree = PersistentBTree(machine, alloc)
        for k in keys:
            tree.put(k, 64)
        for k in keys:
            assert tree.get(k) == 64
        assert tree.keys_inorder() == sorted(keys)


class TestHashmap:
    def test_put_get_remove(self):
        machine, alloc = machine_and_pool()
        hm = PersistentHashmap(machine, alloc, buckets=16)
        hm.put(5)
        assert hm.get(5) is True
        assert hm.get(6) is False
        assert hm.remove(5) is True
        assert hm.get(5) is False
        assert hm.remove(5) is False

    def test_chaining_under_collisions(self):
        machine, alloc = machine_and_pool()
        hm = PersistentHashmap(machine, alloc, buckets=2)  # heavy chains
        for k in range(50):
            hm.put(k)
        for k in range(50):
            assert hm.get(k), f"key {k} lost in chain"
        assert hm.size == 50

    def test_update_does_not_grow(self):
        machine, alloc = machine_and_pool()
        hm = PersistentHashmap(machine, alloc, buckets=16)
        hm.put(5)
        hm.put(5)
        assert hm.size == 1

    def test_remove_middle_of_chain(self):
        machine, alloc = machine_and_pool()
        hm = PersistentHashmap(machine, alloc, buckets=1)
        for k in (1, 2, 3):
            hm.put(k)
        assert hm.remove(2)
        assert hm.get(1) and hm.get(3) and not hm.get(2)

    def test_bucket_validation(self):
        machine, alloc = machine_and_pool()
        with pytest.raises(ValueError):
            PersistentHashmap(machine, alloc, buckets=3)


class TestCritbitTree:
    def test_put_get(self):
        machine, alloc = machine_and_pool()
        tree = PersistentCritbitTree(machine, alloc)
        tree.put(5)
        assert tree.get(5) is True
        assert tree.get(4) is False

    def test_update_in_place(self):
        machine, alloc = machine_and_pool()
        tree = PersistentCritbitTree(machine, alloc)
        tree.put(5)
        tree.put(5)
        assert tree.size == 1

    def test_many_keys(self):
        machine, alloc = machine_and_pool(pages=2048)
        tree = PersistentCritbitTree(machine, alloc)
        keys = list(range(0, 400, 3))
        random.Random(7).shuffle(keys)
        for k in keys:
            tree.put(k)
        for k in keys:
            assert tree.get(k), f"key {k} lost"
        for probe in (1, 2, 401, 10**6):
            assert not tree.get(probe)
        assert tree.size == len(keys)

    @given(keys=st.lists(st.integers(0, 2**32), min_size=1, max_size=100, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_matches_set_property(self, keys):
        machine, alloc = machine_and_pool(pages=2048)
        tree = PersistentCritbitTree(machine, alloc)
        for k in keys:
            tree.put(k)
        for k in keys:
            assert tree.get(k)
        assert tree.size == len(keys)
