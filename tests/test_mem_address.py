"""Address arithmetic and the RoRaBaChCo device map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    LINE_SIZE,
    LINES_PER_PAGE,
    PAGE_SIZE,
    AddressMap,
    line_address,
    page_number,
    page_offset_lines,
)


class TestLinePageMath:
    def test_line_address_aligns_down(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64
        assert line_address(130) == 128

    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(PAGE_SIZE - 1) == 0
        assert page_number(PAGE_SIZE) == 1

    def test_page_offset_lines(self):
        assert page_offset_lines(0) == 0
        assert page_offset_lines(64) == 1
        assert page_offset_lines(PAGE_SIZE - 1) == LINES_PER_PAGE - 1

    def test_constants_consistent(self):
        assert LINES_PER_PAGE * LINE_SIZE == PAGE_SIZE

    @given(addr=st.integers(0, 2**48))
    @settings(max_examples=50, deadline=None)
    def test_reconstruction_property(self, addr):
        reconstructed = page_number(addr) * PAGE_SIZE + page_offset_lines(addr) * LINE_SIZE
        assert reconstructed == line_address(addr)


class TestAddressMap:
    def test_defaults_match_table3(self):
        amap = AddressMap()
        assert amap.ranks_per_channel == 2
        assert amap.banks_per_rank == 8
        assert amap.row_buffer_bytes == 1024

    def test_total_banks(self):
        assert AddressMap().total_banks == 16
        assert AddressMap(channels=2).total_banks == 32

    def test_sequential_lines_same_row(self):
        amap = AddressMap()
        first = amap.decompose(0)
        second = amap.decompose(64)
        assert first.row == second.row
        assert first.bank_key == second.bank_key
        assert second.column == first.column + 1

    def test_row_crossing_changes_coordinates(self):
        amap = AddressMap()
        last_in_row = amap.decompose(1024 - 64)
        next_line = amap.decompose(1024)
        assert (last_in_row.row, last_in_row.bank_key) != (next_line.row, next_line.bank_key) or (
            next_line.column == 0
        )

    def test_bank_interleave_above_column_bits(self):
        """RoRaBaChCo: the bank changes once the row-buffer span is crossed."""
        amap = AddressMap(channels=1)
        a = amap.decompose(0)
        b = amap.decompose(1024)  # next row-buffer-sized chunk
        assert b.bank == (a.bank + 1) % amap.banks_per_rank

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            AddressMap().decompose(-1)

    @pytest.mark.parametrize("kwargs", [
        dict(channels=3),
        dict(banks_per_rank=0),
        dict(row_buffer_bytes=96),
        dict(row_buffer_bytes=32),  # smaller than a line
    ])
    def test_bad_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AddressMap(**kwargs)

    @given(addr=st.integers(0, 2**40))
    @settings(max_examples=50, deadline=None)
    def test_decompose_fields_in_range(self, addr):
        amap = AddressMap(channels=2)
        coord = amap.decompose(addr)
        assert 0 <= coord.channel < amap.channels
        assert 0 <= coord.rank < amap.ranks_per_channel
        assert 0 <= coord.bank < amap.banks_per_rank
        assert 0 <= coord.column < amap.columns_per_row

    @given(a=st.integers(0, 2**30), b=st.integers(0, 2**30))
    @settings(max_examples=50, deadline=None)
    def test_decompose_injective_on_lines(self, a, b):
        amap = AddressMap()
        la, lb = line_address(a), line_address(b)
        ca, cb = amap.decompose(la), amap.decompose(lb)
        if la != lb:
            assert (ca.channel, ca.rank, ca.bank, ca.row, ca.column) != (
                cb.channel, cb.rank, cb.bank, cb.row, cb.column
            )
