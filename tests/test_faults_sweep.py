"""Systematic crash-point sweeps: the universal no-silent-corruption claim.

One PMEMKV pattern and one DAX micro-workload are swept end to end —
record, replay-to-boundary, crash, reboot, audit — under a mixed fault
plan (partial ADR drain, torn writes, a media bit flip).  The sweep's
own invariant does the heavy lifting; these tests pin it plus the
determinism contract that makes any failure a repro.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.faults.sweep import (
    OUTCOME_DETECTED,
    OUTCOME_RECOVERED_NEW,
    OUTCOME_SILENT,
    SweepResult,
    CrashPointResult,
    sweep_workload,
    workload_factory,
)
from repro.sim import MachineConfig, Scheme

PLAN = FaultPlan(seed=0xFA11, drain_fraction=0.5, torn_probability=0.5, bit_flips=1)


def run_sweep(name: str, **factory_kw) -> SweepResult:
    return sweep_workload(
        workload_factory(name, **factory_kw),
        MachineConfig(scheme=Scheme.FSENCR),
        plan=PLAN,
        max_points=4,
        seed=0xFA11,
        name=name,
    )


@pytest.fixture(scope="module")
def dax_sweep() -> SweepResult:
    return run_sweep("DAX-3", iterations=16)


@pytest.fixture(scope="module")
def pmemkv_sweep() -> SweepResult:
    return run_sweep("Fillseq-S", ops=12)


class TestInvariant:
    def test_dax_micro_no_silent_corruption(self, dax_sweep):
        dax_sweep.assert_invariant()
        assert dax_sweep.silent_corruptions == 0
        assert dax_sweep.outcome_totals().get(OUTCOME_SILENT, 0) == 0

    def test_pmemkv_no_silent_corruption(self, pmemkv_sweep):
        pmemkv_sweep.assert_invariant()
        assert pmemkv_sweep.silent_corruptions == 0

    def test_sweep_actually_exercised_faults(self, dax_sweep):
        """The invariant is vacuous unless lines were really at risk."""
        assert len(dax_sweep.points) > 0
        assert dax_sweep.boundaries_total >= len(dax_sweep.points)
        dispositions = {k: 0 for k in ("drained", "dropped", "torn")}
        for point in dax_sweep.points:
            for kind, count in point.dispositions.items():
                dispositions[kind] += count
        assert dispositions["drained"] > 0
        assert dispositions["dropped"] + dispositions["torn"] > 0
        totals = dax_sweep.outcome_totals()
        assert totals.get(OUTCOME_RECOVERED_NEW, 0) > 0
        assert totals.get(OUTCOME_DETECTED, 0) > 0

    def test_recovery_work_is_accounted(self, pmemkv_sweep):
        for point in pmemkv_sweep.points:
            assert point.recovery_ns > 0
            assert point.recovered_keys >= 1  # the workload's file key


class TestDeterminism:
    def test_identical_sweeps_produce_identical_results(self, dax_sweep):
        again = run_sweep("DAX-3", iterations=16)
        assert again.points == dax_sweep.points
        assert again.boundaries_total == dax_sweep.boundaries_total

    def test_per_point_plans_are_derived_not_shared(self, dax_sweep):
        seeds = [point.plan_seed for point in dax_sweep.points]
        assert len(set(seeds)) == len(seeds)
        assert all(seed != PLAN.seed for seed in seeds)


class TestAssertInvariantMechanism:
    def test_raises_listing_silent_lines(self):
        result = SweepResult(workload="w", scheme="fsencr", seed=1, boundaries_total=1)
        result.points.append(
            CrashPointResult(
                op_index=0,
                plan_seed=1,
                dispositions={},
                outcomes={OUTCOME_SILENT: 1},
                silent_lines=(0x1000,),
                trials=0,
                recovery_ns=0.0,
                recovered_keys=0,
            )
        )
        with pytest.raises(AssertionError, match="0x1000"):
            result.assert_invariant()
