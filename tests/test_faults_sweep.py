"""Systematic crash-point sweeps: the universal no-silent-corruption claim.

One PMEMKV pattern and one DAX micro-workload are swept end to end —
record, replay-to-boundary, crash, reboot, audit — under a mixed fault
plan (partial ADR drain, torn writes, a media bit flip).  The sweep's
own invariant does the heavy lifting; these tests pin it plus the
determinism contract that makes any failure a repro.
"""

from __future__ import annotations

import pytest

from repro.faults import FAULT_PROFILES, FaultPlan
from repro.faults.sweep import (
    MATRIX_SCHEME_LABELS,
    MatrixResult,
    OUTCOME_DETECTED,
    OUTCOME_RECOVERED_NEW,
    OUTCOME_SILENT,
    SweepResult,
    CrashPointResult,
    sweep_matrix,
    sweep_workload,
    workload_factory,
)
from repro.sim import Machine, MachineConfig, Scheme

PLAN = FaultPlan(seed=0xFA11, drain_fraction=0.5, torn_probability=0.5, bit_flips=1)


def run_sweep(name: str, **factory_kw) -> SweepResult:
    return sweep_workload(
        workload_factory(name, **factory_kw),
        MachineConfig(scheme=Scheme.FSENCR),
        plan=PLAN,
        max_points=4,
        seed=0xFA11,
        name=name,
    )


@pytest.fixture(scope="module")
def dax_sweep() -> SweepResult:
    return run_sweep("DAX-3", iterations=16)


@pytest.fixture(scope="module")
def pmemkv_sweep() -> SweepResult:
    return run_sweep("Fillseq-S", ops=12)


class TestInvariant:
    def test_dax_micro_no_silent_corruption(self, dax_sweep):
        dax_sweep.assert_invariant()
        assert dax_sweep.silent_corruptions == 0
        assert dax_sweep.outcome_totals().get(OUTCOME_SILENT, 0) == 0

    def test_pmemkv_no_silent_corruption(self, pmemkv_sweep):
        pmemkv_sweep.assert_invariant()
        assert pmemkv_sweep.silent_corruptions == 0

    def test_sweep_actually_exercised_faults(self, dax_sweep):
        """The invariant is vacuous unless lines were really at risk."""
        assert len(dax_sweep.points) > 0
        assert dax_sweep.boundaries_total >= len(dax_sweep.points)
        dispositions: dict = {}
        for point in dax_sweep.points:
            for kind, count in point.dispositions.items():
                dispositions[kind] = dispositions.get(kind, 0) + count
        assert dispositions["drained"] > 0
        assert dispositions["dropped"] + dispositions["torn"] > 0
        totals = dax_sweep.outcome_totals()
        assert totals.get(OUTCOME_RECOVERED_NEW, 0) > 0
        assert totals.get(OUTCOME_DETECTED, 0) > 0

    def test_recovery_work_is_accounted(self, pmemkv_sweep):
        for point in pmemkv_sweep.points:
            assert point.recovery_ns > 0
            assert point.recovered_keys >= 1  # the workload's file key


class TestDeterminism:
    def test_identical_sweeps_produce_identical_results(self, dax_sweep):
        again = run_sweep("DAX-3", iterations=16)
        assert again.points == dax_sweep.points
        assert again.boundaries_total == dax_sweep.boundaries_total

    def test_per_point_plans_are_derived_not_shared(self, dax_sweep):
        seeds = [point.plan_seed for point in dax_sweep.points]
        assert len(set(seeds)) == len(seeds)
        assert all(seed != PLAN.seed for seed in seeds)


@pytest.fixture(scope="module")
def matrix() -> MatrixResult:
    return sweep_matrix(
        workload_factory("Fillseq-S", ops=12),
        MachineConfig(),
        max_points=2,
        seed=0xFA11,
        name="Fillseq-S",
    )


class TestSchemeMatrix:
    def test_covers_every_scheme_and_profile(self, matrix):
        assert len(matrix.cells) == len(MATRIX_SCHEME_LABELS) * len(FAULT_PROFILES)
        schemes = {scheme for scheme, _ in matrix.cells}
        profiles = {profile for _, profile in matrix.cells}
        assert schemes == set(MATRIX_SCHEME_LABELS)
        assert profiles == set(FAULT_PROFILES)

    def test_no_cell_has_silent_corruption(self, matrix):
        matrix.assert_invariant()
        assert matrix.silent_corruptions == 0

    def test_new_fault_vocabulary_is_exercised(self, matrix):
        burst_cells = [r for (s, p), r in matrix.cells.items() if p == "torn-burst"]
        flip_cells = [r for (s, p), r in matrix.cells.items() if p == "counter-flips"]
        assert sum(
            pt.dispositions.get("torn_bursts", 0) for r in burst_cells for pt in r.points
        ) > 0
        assert sum(
            pt.dispositions.get("metadata_flips", 0) for r in flip_cells for pt in r.points
        ) > 0

    def test_summary_names_every_cell(self, matrix):
        summary = matrix.summary()
        for scheme in MATRIX_SCHEME_LABELS:
            assert scheme in summary
        for profile in FAULT_PROFILES:
            assert profile in summary


class TestStrictStatLookups:
    def test_run_result_stat_raises_on_unknown_key(self):
        machine = Machine(MachineConfig())
        base = machine.mmap_anonymous(pages=1)
        machine.load(base)
        result = machine.result("strict")
        known = next(k for k in sorted(result.stats) if "." in k)
        assert result.stat(known) == result.stats[known]
        with pytest.raises(KeyError, match="unknown stat"):
            result.stat("machine.no_such_counter")

    def test_stat_counters_strict_accessor(self):
        machine = Machine(MachineConfig(scheme=Scheme.FSENCR))
        stats = machine.controller.stats
        assert stats.stat("ott_refills") == 0  # eagerly declared
        with pytest.raises(KeyError, match="unknown stat"):
            stats.stat("ott_refils")


class TestAssertInvariantMechanism:
    def test_raises_listing_silent_lines(self):
        result = SweepResult(workload="w", scheme="fsencr", seed=1, boundaries_total=1)
        result.points.append(
            CrashPointResult(
                op_index=0,
                plan_seed=1,
                dispositions={},
                outcomes={OUTCOME_SILENT: 1},
                silent_lines=(0x1000,),
                trials=0,
                recovery_ns=0.0,
                recovered_keys=0,
            )
        )
        with pytest.raises(AssertionError, match="0x1000"):
            result.assert_invariant()
