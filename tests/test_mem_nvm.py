"""PCM device model: row-buffer timing, persist semantics, backing store."""

import pytest

from repro.mem import NVMDevice, NVMStore, NVMTiming


class TestTimingConstants:
    def test_table3_defaults(self):
        t = NVMTiming()
        assert t.read_ns == 60.0
        assert t.write_ns == 150.0
        assert t.t_rcd_ns == 55.0

    def test_derived_latencies(self):
        t = NVMTiming()
        assert t.row_hit_ns == pytest.approx(17.5)
        assert t.row_miss_read_ns == pytest.approx(77.5)
        assert t.dirty_evict_ns == 150.0


class TestRowBuffer:
    def test_first_access_misses(self):
        dev = NVMDevice()
        lat = dev.read(0)
        assert lat == pytest.approx(dev.timing.row_miss_read_ns)
        assert dev.stats.get("row_misses") == 1

    def test_second_access_same_row_hits(self):
        dev = NVMDevice()
        dev.read(0)
        lat = dev.read(64)
        assert lat == pytest.approx(dev.timing.row_hit_ns)
        assert dev.stats.get("row_hits") == 1

    def test_different_row_same_bank_misses(self):
        dev = NVMDevice()
        dev.read(0)
        # Same bank, different row: one full device row span away.
        span = dev.address_map.row_buffer_bytes * dev.address_map.total_banks
        dev.read(span)
        assert dev.stats.get("row_misses") == 2

    def test_banks_independent(self):
        dev = NVMDevice()
        dev.read(0)
        dev.read(1024)  # next bank under RoRaBaChCo
        dev.read(64)  # back to bank 0 — row still open
        assert dev.stats.get("row_hits") == 1

    def test_dirty_row_writeback_charged(self):
        dev = NVMDevice()
        dev.write(0)  # opens row, dirties it
        span = dev.address_map.row_buffer_bytes * dev.address_map.total_banks
        lat = dev.read(span)  # evicts dirty row first
        assert lat >= dev.timing.dirty_evict_ns
        assert dev.stats.get("dirty_row_writebacks") == 1


class TestPersistWrites:
    def test_persist_write_pays_array_write(self):
        dev = NVMDevice()
        lat_posted = dev.write(0)
        lat_persist = dev.write(64, persist=True)
        assert lat_persist >= lat_posted + dev.timing.dirty_evict_ns - dev.timing.row_miss_read_ns

    def test_persist_cleans_row(self):
        dev = NVMDevice()
        dev.write(0, persist=True)
        span = dev.address_map.row_buffer_bytes * dev.address_map.total_banks
        dev.read(span)
        assert dev.stats.get("dirty_row_writebacks") == 0

    def test_counters(self):
        dev = NVMDevice()
        dev.read(0)
        dev.write(64)
        dev.write(128, persist=True)
        assert dev.read_count == 1
        assert dev.write_count == 2
        assert dev.stats.get("persist_writes") == 1


class TestAdaptivePolicy:
    def test_adaptive_close_after_streak(self):
        dev = NVMDevice()
        span = dev.address_map.row_buffer_bytes * dev.address_map.total_banks
        for i in range(NVMDevice.ADAPT_THRESHOLD + 1):
            dev.read(i * span)  # every access a new row in bank 0
        assert dev.stats.get("adaptive_closes") >= 1


class TestNVMStore:
    def test_unwritten_reads_erased(self):
        assert NVMStore().read_line(0) == bytes(64)

    def test_roundtrip(self):
        store = NVMStore()
        store.write_line(128, bytes(range(64)))
        assert store.read_line(128) == bytes(range(64))

    def test_line_aligned_addressing(self):
        store = NVMStore()
        store.write_line(64, b"\x01" * 64)
        assert store.read_line(100) == b"\x01" * 64  # same line

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            NVMStore().write_line(0, b"short")

    def test_contains_and_len(self):
        store = NVMStore()
        assert 0 not in store
        store.write_line(0, bytes(64))
        assert 0 in store and 63 in store
        assert len(store) == 1

    def test_scan_returns_attacker_view(self):
        store = NVMStore()
        store.write_line(0, b"\xab" * 64)
        store.write_line(64, b"\xcd" * 64)
        view = store.scan()
        assert view == {0: b"\xab" * 64, 64: b"\xcd" * 64}
        # The scan is a copy, not the live store.
        view[0] = b"\x00" * 64
        assert store.read_line(0) == b"\xab" * 64
