"""Metadata cache: shared vs partitioned, evictions, hygiene ops."""

import pytest

from repro.mem import LINE_SIZE
from repro.secmem import MetadataCache, MetadataCacheConfig, MetadataKind


def tiny(partitioned=False, ways=2, lines=8):
    return MetadataCache(
        MetadataCacheConfig(size_bytes=lines * LINE_SIZE, ways=ways, partitioned=partitioned)
    )


class TestBasics:
    def test_miss_then_hit(self):
        cache = tiny()
        hit, _ = cache.access(0x1000, MetadataKind.MECB, is_write=False)
        assert not hit
        hit, _ = cache.access(0x1000, MetadataKind.MECB, is_write=False)
        assert hit

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            tiny().access(0, "bogus", False)

    def test_per_kind_stats(self):
        cache = tiny()
        cache.access(0, MetadataKind.MECB, False)
        cache.access(64, MetadataKind.FECB, True)
        assert cache.stats.get("mecb_misses") == 1
        assert cache.stats.get("fecb_misses") == 1
        assert cache.stats.get("fecb_writes") == 1

    def test_hit_rate(self):
        cache = tiny()
        cache.access(0, MetadataKind.MECB, False)
        cache.access(0, MetadataKind.MECB, False)
        assert cache.hit_rate(MetadataKind.MECB) == pytest.approx(0.5)
        assert cache.hit_rate(MetadataKind.OTT) == 0.0


class TestEvictions:
    def test_dirty_eviction_returned(self):
        cache = tiny(ways=1, lines=1)
        cache.access(0, MetadataKind.MECB, is_write=True)
        _, evictions = cache.access(64, MetadataKind.MECB, is_write=False)
        assert len(evictions) == 1 and evictions[0].addr == 0

    def test_clean_eviction_suppressed(self):
        cache = tiny(ways=1, lines=1)
        cache.access(0, MetadataKind.MECB, is_write=False)
        _, evictions = cache.access(64, MetadataKind.MECB, is_write=False)
        assert evictions == []


class TestPartitioning:
    def test_shared_kinds_compete(self):
        cache = tiny(partitioned=False, ways=1, lines=1)
        cache.access(0, MetadataKind.MECB, False)
        cache.access(64, MetadataKind.MERKLE, False)  # evicts the MECB line
        hit, _ = cache.access(0, MetadataKind.MECB, False)
        assert not hit

    def test_partitioned_kinds_isolated(self):
        cache = tiny(partitioned=True, ways=1, lines=4)
        cache.access(0, MetadataKind.MECB, False)
        cache.access(64, MetadataKind.MERKLE, False)
        hit, _ = cache.access(0, MetadataKind.MECB, False)
        assert hit

    def test_partitioned_capacity_split(self):
        config = MetadataCacheConfig(size_bytes=4 * 64 * 4, ways=1, partitioned=True)
        cache = MetadataCache(config)
        # Each kind gets 4 lines; the 5th distinct line in one kind evicts.
        for i in range(4):
            cache.access(i * 64, MetadataKind.FECB, False)
        for i in range(4):
            hit, _ = cache.access(i * 64, MetadataKind.FECB, False)
            assert hit


class TestHygieneOps:
    def test_lookup_only_no_alloc(self):
        cache = tiny()
        assert cache.lookup_only(0, MetadataKind.MECB) is False
        hit, _ = cache.access(0, MetadataKind.MECB, False)
        assert not hit  # lookup_only must not have allocated

    def test_lookup_only_sees_present(self):
        cache = tiny()
        cache.access(0, MetadataKind.MECB, False)
        assert cache.lookup_only(0, MetadataKind.MECB) is True

    def test_clean_line(self):
        cache = tiny(ways=1, lines=1)
        cache.access(0, MetadataKind.MECB, is_write=True)
        assert cache.clean_line(0, MetadataKind.MECB) is True
        _, evictions = cache.access(64, MetadataKind.MECB, False)
        assert evictions == []  # cleaned, so no write-back

    def test_flush_all_returns_dirty_once(self):
        cache = tiny()
        cache.access(0, MetadataKind.MECB, is_write=True)
        cache.access(64, MetadataKind.FECB, is_write=False)
        dirty = cache.flush_all()
        assert [e.addr for e in dirty] == [0]

    def test_flush_all_partitioned_dedupes_nothing_but_works(self):
        cache = tiny(partitioned=True, ways=1, lines=4)
        cache.access(0, MetadataKind.MECB, is_write=True)
        cache.access(64, MetadataKind.MERKLE, is_write=True)
        dirty = {e.addr for e in cache.flush_all()}
        assert dirty == {0, 64}
