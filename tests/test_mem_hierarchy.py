"""Three-level hierarchy: hit levels, allocation, write-backs, flushes."""

import pytest

from repro.mem import CacheConfig, CacheHierarchy, HierarchyConfig


def tiny_hierarchy():
    """1/2/4-line caches so evictions are easy to force."""
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(name="l1", size_bytes=64, ways=1, hit_latency=2.0),
            l2=CacheConfig(name="l2", size_bytes=128, ways=2, hit_latency=20.0),
            l3=CacheConfig(name="l3", size_bytes=256, ways=4, hit_latency=32.0),
        )
    )


class TestAccessPath:
    def test_cold_access_misses_everywhere(self):
        h = tiny_hierarchy()
        outcome = h.access(0, is_write=False)
        assert outcome.hit_level is None
        assert outcome.miss_addr == 0
        assert outcome.latency_ns == pytest.approx(2 + 20 + 32)

    def test_second_access_hits_l1(self):
        h = tiny_hierarchy()
        h.access(0, False)
        outcome = h.access(0, False)
        assert outcome.hit_level == "l1"
        assert outcome.miss_addr is None
        assert outcome.latency_ns == pytest.approx(2)

    def test_l1_victim_still_hits_lower_level(self):
        h = tiny_hierarchy()
        h.access(0, False)
        h.access(64, False)  # evicts 0 from the 1-line L1
        outcome = h.access(0, False)
        assert outcome.hit_level in ("l2", "l3")

    def test_hit_refills_upper_levels(self):
        h = tiny_hierarchy()
        h.access(0, False)
        h.access(64, False)
        h.access(0, False)  # L2 hit refills L1
        outcome = h.access(0, False)
        assert outcome.hit_level == "l1"

    def test_default_config_matches_table3_scaled_interface(self):
        h = CacheHierarchy()
        assert h.l1.config.hit_latency == 2.0
        assert h.l2.config.hit_latency == 20.0
        assert h.l3.config.hit_latency == 32.0


class TestWritebacks:
    def test_dirty_l3_eviction_reported(self):
        h = tiny_hierarchy()
        h.access(0, is_write=True)
        writebacks = []
        # Fill L3's single set far enough to evict line 0.
        addr = 64
        for _ in range(16):
            outcome = h.access(addr, is_write=False)
            writebacks.extend(outcome.writeback_addrs)
            addr += 64 * 4  # stay in one L3 set (4 sets of 64B lines)
        assert 0 in writebacks

    def test_clean_evictions_not_reported(self):
        h = tiny_hierarchy()
        h.access(0, is_write=False)
        reported = []
        addr = 64 * 4
        for _ in range(16):
            outcome = h.access(addr, is_write=False)
            reported.extend(outcome.writeback_addrs)
            addr += 64 * 4
        assert 0 not in reported


class TestFlush:
    def test_flush_dirty_line_reports_dirty(self):
        h = tiny_hierarchy()
        h.access(0, is_write=True)
        assert h.flush_line(0, invalidate=False) is True

    def test_flush_clean_line_reports_clean(self):
        h = tiny_hierarchy()
        h.access(0, is_write=False)
        assert h.flush_line(0, invalidate=False) is False

    def test_clwb_keeps_line_cached(self):
        h = tiny_hierarchy()
        h.access(0, is_write=True)
        h.flush_line(0, invalidate=False)
        assert h.access(0, False).hit_level == "l1"

    def test_clflush_invalidates(self):
        h = tiny_hierarchy()
        h.access(0, is_write=True)
        assert h.flush_line(0, invalidate=True) is True
        assert h.access(0, False).hit_level is None

    def test_flush_absent_line(self):
        assert tiny_hierarchy().flush_line(0, invalidate=False) is False


class TestDrain:
    def test_drain_collects_dirty_lines(self):
        h = tiny_hierarchy()
        h.access(0, is_write=True)
        h.access(64, is_write=False)
        dirty = h.drain_dirty()
        assert 0 in dirty
        assert 64 not in dirty

    def test_drain_empties_hierarchy(self):
        h = tiny_hierarchy()
        h.access(0, is_write=True)
        h.drain_dirty()
        assert h.access(0, False).hit_level is None
