"""FsEncr controller: recognition, dual OTP, key life-cycle, crash paths."""

import pytest

from repro.core import FsEncrController, KeyUnavailableError, set_df
from repro.mem import MemoryRequest
from repro.secmem import IntegrityError, MetadataLayout, SecureControllerConfig


def functional_controller():
    return FsEncrController(
        layout=MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024),
        config=SecureControllerConfig(functional=True),
    )


def timing_controller(**kwargs):
    return FsEncrController(
        layout=MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024),
        config=SecureControllerConfig(**kwargs),
    )


def open_file(ctl, group=5, file=42, page=3, fill=0x77):
    key = bytes([fill]) * 16
    ctl.install_file_key(group_id=group, file_id=file, key=key)
    ctl.update_fecb(page=page, group_id=group, file_id=file)
    return key


class TestRecognition:
    def test_df_requests_counted(self):
        ctl = timing_controller()
        open_file(ctl)
        ctl.access(MemoryRequest(addr=set_df(3 * 4096), is_write=False))
        ctl.access(MemoryRequest(addr=0x9000, is_write=False))
        assert ctl.stats.get("dax_requests") == 1

    def test_non_df_requests_skip_file_path(self):
        ctl = timing_controller()
        open_file(ctl)
        before = ctl.metadata_cache.stats.get("fecb_misses") + ctl.metadata_cache.stats.get("fecb_hits")
        ctl.access(MemoryRequest(addr=0x9000, is_write=False))
        after = ctl.metadata_cache.stats.get("fecb_misses") + ctl.metadata_cache.stats.get("fecb_hits")
        assert after == before


class TestDualOtp:
    def test_roundtrip(self):
        ctl = functional_controller()
        open_file(ctl)
        addr = set_df(3 * 4096 + 128)
        ctl.write_data(addr, bytes(range(64)))
        assert ctl.read_data(addr) == bytes(range(64))

    def test_dax_line_sealed_differently_from_memory_line(self):
        """Same plaintext, same counters: a stamped page's ciphertext
        must differ from an unstamped page's (the file pad layer)."""
        ctl = functional_controller()
        open_file(ctl, page=3)
        line = bytes(64)
        ctl.write_data(set_df(3 * 4096), line)
        ctl.write_data(5 * 4096, line)
        dax_ct = ctl.store.read_line(3 * 4096)
        mem_ct = ctl.store.read_line(5 * 4096)
        assert dax_ct != mem_ct

    def test_memory_key_alone_cannot_decrypt_dax_line(self):
        """Defence-in-depth: stripping only the memory pad leaves the
        file pad in place."""
        from repro.crypto import OTPEngine, CounterIV, MEMORY_DOMAIN, xor_bytes

        ctl = functional_controller()
        open_file(ctl, page=3)
        plaintext = b"payroll!" * 8
        ctl.write_data(set_df(3 * 4096), plaintext)
        ciphertext = ctl.store.read_line(3 * 4096)
        major, minor = ctl.mecb.block(3).value_for(0)
        mem_pad = OTPEngine(ctl.keys.memory_key).pad_for(
            CounterIV(domain=MEMORY_DOMAIN, page_id=3, page_offset=0, major=major, minor=minor)
        )
        assert xor_bytes(ciphertext, mem_pad) != plaintext

    def test_unknown_key_read_raises(self):
        ctl = functional_controller()
        ctl.update_fecb(page=3, group_id=5, file_id=42)  # stamped, no key
        with pytest.raises(KeyUnavailableError):
            ctl.read_data(set_df(3 * 4096))


class TestKeyLifecycle:
    def test_install_logs_to_region(self):
        ctl = functional_controller()
        open_file(ctl)
        found, _ = ctl.ott_region.fetch(5, 42)
        assert found is not None

    def test_ott_spill_and_refill(self):
        from repro.core import OpenTunnelTable

        ctl = FsEncrController(
            layout=MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024),
            config=SecureControllerConfig(functional=True),
            ott=OpenTunnelTable(banks=1, entries_per_bank=2),
        )
        for file_id in (1, 2, 3):  # capacity 2: file 1 spills
            open_file(ctl, file=file_id, page=file_id)
        assert ctl.stats.get("ott_spills") >= 1
        # file 1's key must still be reachable (from the region).
        ctl.write_data(set_df(1 * 4096), bytes(64))
        assert ctl.read_data(set_df(1 * 4096)) == bytes(64)

    def test_revoke_secure_deletes(self):
        ctl = functional_controller()
        key = open_file(ctl)
        addr = set_df(3 * 4096)
        ctl.write_data(addr, b"\x42" * 64)
        ctl.revoke_file_key(5, 42)
        # Even re-installing the same key cannot decrypt: counters shredded.
        ctl.install_file_key(5, 42, key)
        ctl.update_fecb(page=3, group_id=5, file_id=42)
        assert ctl.read_data(addr) != b"\x42" * 64

    def test_page_recycled_to_new_file_resets_counters(self):
        ctl = functional_controller()
        open_file(ctl, file=42, page=3)
        ctl.install_file_key(5, 43, bytes([9]) * 16)
        ctl.update_fecb(page=3, group_id=5, file_id=43)
        assert ctl.stats.get("fecb_recycles") == 1
        assert ctl.fecb.block(3).ident == (5, 43)

    def test_rekey_preserves_data_under_new_key(self):
        ctl = functional_controller()
        open_file(ctl)
        addr = set_df(3 * 4096)
        ctl.write_data(addr, b"\x13" * 64)
        new_key = ctl.rekey_file(5, 42)
        assert new_key != bytes([0x77]) * 16
        assert ctl.read_data(addr) == b"\x13" * 64
        assert ctl.ott.lookup(5, 42).key == new_key

    def test_rekey_unknown_file_raises(self):
        with pytest.raises(KeyUnavailableError):
            functional_controller().rekey_file(1, 1)


class TestAdminLock:
    def test_first_login_enrolls(self):
        ctl = functional_controller()
        assert ctl.admin_login(b"c" * 32) is True
        assert not ctl.locked

    def test_wrong_credential_locks(self):
        ctl = functional_controller()
        ctl.admin_login(b"c" * 32)
        assert ctl.admin_login(b"x" * 32) is False
        assert ctl.locked

    def test_locked_engine_seals_file_data(self):
        ctl = functional_controller()
        ctl.admin_login(b"c" * 32)
        open_file(ctl)
        addr = set_df(3 * 4096)
        ctl.write_data(addr, b"\x21" * 64)
        ctl.admin_login(b"x" * 32)
        assert ctl.read_data(addr) != b"\x21" * 64
        ctl.admin_login(b"c" * 32)
        assert ctl.read_data(addr) == b"\x21" * 64

    def test_locked_engine_still_serves_plain_memory(self):
        ctl = functional_controller()
        ctl.admin_login(b"c" * 32)
        ctl.write_data(0x9000, b"\x33" * 64)
        ctl.admin_login(b"x" * 32)
        assert ctl.read_data(0x9000) == b"\x33" * 64


class TestIntegrityCoverage:
    def test_fecb_tamper_detected(self):
        ctl = functional_controller()
        open_file(ctl)
        addr = set_df(3 * 4096)
        ctl.write_data(addr, bytes(64))
        ctl.fecb.block(3).counters.minors[0] ^= 1
        with pytest.raises(IntegrityError):
            ctl.read_data(addr)

    def test_fecb_id_swap_detected(self):
        """Pointing a page's FECB at another file without authorisation
        must break integrity (the §VI File-ID protection argument)."""
        ctl = functional_controller()
        open_file(ctl, file=42, page=3)
        ctl.install_file_key(5, 43, bytes([1]) * 16)
        addr = set_df(3 * 4096)
        ctl.write_data(addr, bytes(64))
        ctl.fecb.block(3).file_id = 43  # out-of-band swap
        with pytest.raises(IntegrityError):
            ctl.read_data(addr)


class TestCrashRecovery:
    def test_ott_recovery_from_region(self):
        ctl = functional_controller()
        for file_id in (41, 42, 43):
            open_file(ctl, file=file_id, page=file_id % 8)
        recovered = ctl.recover_ott_after_crash()
        assert recovered == 3
        assert ctl.ott.lookup(5, 41) is not None

    def test_crash_flush_then_recover(self):
        ctl = functional_controller()
        open_file(ctl)
        ctl.crash_flush_ott()
        assert ctl.recover_ott_after_crash() >= 1

    def test_fecb_write_path_persists_via_osiris(self):
        ctl = timing_controller(stop_loss=2)
        open_file(ctl)
        addr = set_df(3 * 4096)
        for _ in range(4):
            ctl.access(MemoryRequest(addr=addr, is_write=True))
        assert ctl.stats.get("osiris_fecb_persists") == 2
