"""The vectorized batch executor: capture -> compile -> sweep.

The contract under test is absolute: ``repro.sim.batch`` is an
execution strategy, never a model change.  Every cell it produces —
fast-path interpreted, replay-fallback, or capture-fallback — must be
bit-identical to per-access dispatch, across every registered scheme.
"""

from dataclasses import replace

import pytest

from repro.exec.spec import CellSpec, canonical_json, execute_cell
from repro.sim import (
    BatchRunner,
    Machine,
    Trace,
    TraceRecorder,
    compile_trace,
    execute_compiled,
    get_scheme,
    run_workload_batch,
    scheme_names,
)
from repro.sim.batch import _supports_fast_path
from repro.sim.config import MachineConfig
from repro.sim.trace import TraceOp
from repro.workloads import make_dax_micro, make_pmemkv_workload, make_whisper_workload
from repro.workloads.base import run_workload
from repro.workloads.transactions import BankWorkload

_FACTORIES = {
    "DAX-1": lambda: make_dax_micro("DAX-1", iterations=120, seed=7),
    "Fillseq-S": lambda: make_pmemkv_workload("Fillseq-S", ops=24, seed=1234),
    "Hashmap": lambda: make_whisper_workload("Hashmap", ops=40, seed=99),
}


@pytest.mark.parametrize("workload_name", sorted(_FACTORIES))
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_batched_equals_per_access(workload_name, scheme_name):
    """Every (workload, scheme) cell: batch == per-access, to the bit.

    This spans the whole execution envelope — DAX schemes run the
    inline interpreter, overlay schemes (conventional, software
    encryption) take the replay fallback, and anubis-wired variants are
    gated out to replay as well; all must agree with direct runs.
    """
    factory = _FACTORIES[workload_name]
    direct = run_workload(get_scheme(scheme_name).configure(MachineConfig()), factory())
    batched = run_workload_batch(
        get_scheme(scheme_name).configure(MachineConfig()), factory()
    )
    assert batched.to_dict() == direct.to_dict()


def test_run_workload_batch_kwarg_routes():
    config = get_scheme("fsencr").configure(MachineConfig())
    direct = run_workload(config, _FACTORIES["DAX-1"]())
    via_kwarg = run_workload(config, _FACTORIES["DAX-1"](), batch=True)
    assert via_kwarg.to_dict() == direct.to_dict()


def test_transactional_workload_batches_bit_identically():
    """BankWorkload's persist-dense redo-log pattern exercises the
    flush/fence micro-ops harder than the KV suites."""
    config = get_scheme("fsencr").configure(MachineConfig())
    direct = run_workload(config, BankWorkload(accounts=16, transfers=20, seed=3))
    batched = run_workload_batch(
        get_scheme("fsencr").configure(MachineConfig()),
        BankWorkload(accounts=16, transfers=20, seed=3),
    )
    assert batched.to_dict() == direct.to_dict()


def test_capture_fallback_for_untraceable_workload():
    """In functional mode BankWorkload drives the byte-level API
    (store_bytes), which the capture stub deliberately does not model;
    batch execution must fall back to a plain direct run with
    identical results."""
    config = replace(
        get_scheme("fsencr").configure(MachineConfig()), functional=True
    )
    direct = run_workload(config, BankWorkload(accounts=16, transfers=20, seed=3))
    batched = run_workload_batch(
        config, BankWorkload(accounts=16, transfers=20, seed=3)
    )
    assert batched.to_dict() == direct.to_dict()


class TestBatchRunner:
    def test_trace_shared_across_schemes_in_one_encryption_class(self):
        runner = BatchRunner()
        for scheme_name in ("fsencr", "fsencr+wpq", "fsencr+partitioned"):
            config = get_scheme(scheme_name).configure(MachineConfig())
            result = runner.run(config, _FACTORIES["Hashmap"]())
            direct = run_workload(
                get_scheme(scheme_name).configure(MachineConfig()),
                _FACTORIES["Hashmap"](),
            )
            assert result.to_dict() == direct.to_dict()
        # One encryption class -> one captured/compiled trace.
        assert len(runner._compiled) == 1

    def test_encryption_classes_do_not_share_traces(self):
        """The recorded op stream depends on has_file_encryption (the
        ``encrypted`` flag on create); classes must compile separately."""
        runner = BatchRunner()
        runner.run(get_scheme("ext4dax_plain").configure(MachineConfig()),
                   _FACTORIES["DAX-1"]())
        runner.run(get_scheme("fsencr").configure(MachineConfig()),
                   _FACTORIES["DAX-1"]())
        assert len(runner._compiled) == 2

    def test_uncapturable_workload_memoised_as_none(self):
        config = replace(
            get_scheme("fsencr").configure(MachineConfig()), functional=True
        )
        runner = BatchRunner()
        for _ in range(2):
            runner.run(config, BankWorkload(accounts=16, transfers=5, seed=3))
        key = next(iter(runner._compiled))
        assert runner._compiled[key] is None


class TestCompile:
    @staticmethod
    def _recorded_trace():
        machine = Machine(MachineConfig())
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        recorder = TraceRecorder(machine, name="t")
        handle = recorder.create_file("/pmem/f", uid=1000)
        base = recorder.mmap(handle, pages=1)
        recorder.mark_measurement_start()
        recorder.store(base, 128)       # two lines
        recorder.persist(base, 8)       # write + flush + fence
        recorder.compute(12.5)
        return recorder.trace

    def test_micro_op_expansion(self):
        compiled = compile_trace(self._recorded_trace())
        # store(128B)=2 writes; persist(8B)=1 write + 1 flush + 1 fence;
        # compute=1.  Structural ops split chunks, not micro-ops.
        assert len(compiled) == 6
        assert len(compiled.rares) == 3  # create, mmap, mark
        assert compiled.trace.ops[0].op == "create"

    def test_invalid_size_rejected_eagerly(self):
        trace = Trace(name="bad", ops=[TraceOp(op="load", addr=0, size=0)])
        with pytest.raises(ValueError, match="size"):
            compile_trace(trace)

    def test_unknown_op_rejected(self):
        trace = Trace(name="bad", ops=[TraceOp(op="warp", addr=0, size=8)])
        with pytest.raises(ValueError, match="warp"):
            compile_trace(trace)

    def test_execute_compiled_matches_replay(self):
        trace = self._recorded_trace()
        compiled = compile_trace(trace)

        fresh = Machine(MachineConfig())
        fresh.add_user(uid=1000, gid=100, passphrase="pw")
        execute_compiled(compiled, fresh)

        reference = Machine(MachineConfig())
        reference.add_user(uid=1000, gid=100, passphrase="pw")
        reference.execute_trace(trace)  # replay path
        assert fresh.result("t").to_dict() == reference.result("t").to_dict()

    def test_machine_execute_trace_batch_kwarg(self):
        trace = self._recorded_trace()
        a = Machine(MachineConfig())
        a.add_user(uid=1000, gid=100, passphrase="pw")
        a.execute_trace(trace, batch=True)
        b = Machine(MachineConfig())
        b.add_user(uid=1000, gid=100, passphrase="pw")
        b.execute_trace(trace, batch=False)
        assert a.result("t").to_dict() == b.result("t").to_dict()


class TestFastPathGate:
    def test_histogram_forces_fallback(self):
        machine = Machine(get_scheme("fsencr").configure(MachineConfig()))
        assert _supports_fast_path(machine)
        machine.attach_histogram()
        assert not _supports_fast_path(machine)

    def test_functional_mode_forces_fallback(self):
        config = replace(
            get_scheme("fsencr").configure(MachineConfig()), functional=True
        )
        assert not _supports_fast_path(Machine(config))

    def test_histogram_cell_still_bit_identical(self):
        """Fallback cells are not second-class: a histogram-bearing
        machine batches through replay and must agree with direct."""
        def drive(machine):
            handle = machine.create_file("/pmem/f", uid=1000, encrypted=True)
            base = machine.mmap(handle, pages=2)
            machine.mark_measurement_start()
            for i in range(32):
                machine.store(base + i * 64, 64)

        config = get_scheme("fsencr").configure(MachineConfig())
        direct = Machine(config)
        direct.add_user(uid=1000, gid=100, passphrase="pw")
        direct_hist = direct.attach_histogram()
        recorder = TraceRecorder(direct, name="t")
        drive(recorder)

        replayed = Machine(config)
        replayed.add_user(uid=1000, gid=100, passphrase="pw")
        replayed_hist = replayed.attach_histogram()
        replayed.execute_trace(recorder.trace, batch=True)
        assert replayed.result("t").to_dict() == direct.result("t").to_dict()
        assert replayed_hist.as_dict() == direct_hist.as_dict()


class TestCellSpecBatch:
    _CELL = dict(
        kind="compare",
        workload="Fillseq-S",
        config=MachineConfig(),
        ops=24,
        schemes=("baseline_secure", "fsencr"),
    )

    def test_batch_cell_payload_identical(self):
        plain = execute_cell(CellSpec(**self._CELL))
        batched = execute_cell(CellSpec(batch=True, **self._CELL))
        assert batched == plain

    def test_default_stays_out_of_cell_key(self):
        """batch=False must not perturb existing cache keys — a late
        default, exactly like anubis_recovery on MachineConfig."""
        assert "batch" not in canonical_json(CellSpec(**self._CELL))
        assert "batch" in canonical_json(CellSpec(batch=True, **self._CELL))
