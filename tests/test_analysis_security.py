"""Table I execution and the experiment harness plumbing."""

import pytest

from repro.analysis import (
    SCENARIOS,
    attacker_decrypt,
    render_table1,
    table1_matrix,
)
from repro.analysis.security import _build_systems


class TestTable1:
    def test_matrix_matches_paper(self):
        """The paper's Table I, row for row."""
        matrix = table1_matrix()
        rows = [row for _, row in matrix]
        assert rows[0] == [True, False, False]  # memory key only
        assert rows[1] == [True, True, False]  # + filesystem key
        assert rows[2] == [True, True, True]  # + all file keys

    def test_render_contains_verdicts(self):
        text = render_table1()
        assert "System A" in text and "Yes" in text and "No" in text

    def test_scenarios_are_cumulative(self):
        assert SCENARIOS[0].memory_key
        assert SCENARIOS[1].single_fs_key
        assert SCENARIOS[2].all_file_keys


class TestAttackerMechanics:
    def test_no_keys_no_luck(self):
        from repro.analysis.security import Scenario

        systems = _build_systems()
        nothing = Scenario(memory_key=False, single_fs_key=False, all_file_keys=False)
        for system in systems:
            for file_id in system.addr_of_file:
                assert not attacker_decrypt(system, nothing, file_id)

    def test_file_keys_without_memory_key_insufficient(self):
        """Defence-in-depth in the other direction: file keys alone
        cannot strip the memory encryption layer."""
        from repro.analysis.security import Scenario

        only_file_keys = Scenario(memory_key=False, single_fs_key=True, all_file_keys=True)
        for system in _build_systems():
            for file_id in system.addr_of_file:
                assert not attacker_decrypt(system, only_file_keys, file_id)

    def test_system_c_isolates_files(self):
        """Per-file keys: compromising one file's key exposes only that
        file (footnote 1's point)."""
        from repro.analysis.security import Scenario, SystemDesign

        system = _build_systems()[2]  # System C
        scenario = Scenario(memory_key=True, single_fs_key=False, all_file_keys=True)
        # Restrict the attacker to file 10's key only.
        full_keys = dict(system.file_keys)
        system.file_keys = {10: full_keys[10]}
        assert attacker_decrypt(system, scenario, 10)
        assert not attacker_decrypt(system, scenario, 11)

    def test_dimm_residue_is_not_plaintext(self):
        for system in _build_systems():
            for file_id in system.addr_of_file:
                assert not system.dimm_residue(file_id).startswith(b"TOP-SECRET")
