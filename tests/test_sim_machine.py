"""The machine model: mapping, faulting, timing accesses, functional IO."""

import pytest

from repro.fs import AccessDenied
from repro.kernel import PageFault
from repro.mem import PAGE_SIZE
from repro.sim import Machine, MachineConfig, Scheme


def make_machine(scheme: Scheme = Scheme.FSENCR, functional: bool = False, **overrides) -> Machine:
    machine = Machine(MachineConfig(scheme=scheme, functional=functional, **overrides))
    machine.add_user(uid=1000, gid=100, passphrase="fixture-pass")
    return machine


class TestFileLifecycle:
    def test_create_open_mmap(self):
        m = make_machine()
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=4)
        assert base % PAGE_SIZE == 0
        assert m.elapsed_ns > 0  # syscall costs charged

    def test_regions_do_not_overlap(self):
        m = make_machine()
        h = m.create_file("/pmem/f", uid=1000)
        a = m.mmap(h, pages=4)
        b = m.mmap(h, pages=4)
        assert abs(a - b) >= 4 * PAGE_SIZE

    def test_permissions_enforced_via_machine(self):
        m = make_machine()
        m.users.add_user(2000, 200)
        m.keyring.login(2000, "bob")
        m.create_file("/pmem/priv", uid=1000, mode=0o600)
        with pytest.raises(AccessDenied):
            m.open_file("/pmem/priv", uid=2000)

    def test_unlink_and_chmod(self):
        m = make_machine()
        m.create_file("/pmem/f", uid=1000)
        m.chmod("/pmem/f", uid=1000, mode=0o600)
        m.unlink("/pmem/f", uid=1000)
        assert not m.fs.exists("/pmem/f")


class TestAccessPath:
    def test_access_outside_regions_faults(self):
        m = make_machine()
        with pytest.raises(PageFault):
            m.load(0xDEAD0000, 8)

    def test_first_touch_faults_once(self):
        m = make_machine()
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=2)
        m.load(base, 8)
        m.load(base + 64, 8)
        assert m.mmu.stats.get("faults") == 1
        m.load(base + PAGE_SIZE, 8)
        assert m.mmu.stats.get("faults") == 2

    def test_df_set_for_encrypted_files_under_fsencr(self):
        m = make_machine(Scheme.FSENCR)
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=1)
        m.load(base, 8)
        vpn = base // PAGE_SIZE
        assert m.mmu.page_table.lookup(vpn).df is True

    def test_df_clear_for_plain_files(self):
        m = make_machine(Scheme.FSENCR)
        h = m.create_file("/pmem/f", uid=1000, encrypted=False)
        base = m.mmap(h, pages=1)
        m.load(base, 8)
        assert m.mmu.page_table.lookup(base // PAGE_SIZE).df is False

    def test_df_never_set_under_baseline(self):
        m = make_machine(Scheme.BASELINE_SECURE)
        h = m.create_file("/pmem/f", uid=1000)
        base = m.mmap(h, pages=1)
        m.load(base, 8)
        assert m.mmu.page_table.lookup(base // PAGE_SIZE).df is False

    def test_anonymous_memory(self):
        m = make_machine()
        base = m.mmap_anonymous(pages=2)
        m.store(base, 64)
        m.load(base, 64)
        assert m.device.read_count >= 0  # no crash; anon faults served

    def test_multi_line_access_touches_all_lines(self):
        m = make_machine()
        h = m.create_file("/pmem/f", uid=1000)
        base = m.mmap(h, pages=1)
        before = m.elapsed_ns
        m.load(base, 256)  # 4 lines
        assert m.elapsed_ns > before

    def test_compute_advances_clock_only(self):
        m = make_machine()
        t = m.elapsed_ns
        m.compute(123.0)
        assert m.elapsed_ns == t + 123.0


class TestPersistPath:
    def test_persist_costs_more_than_store(self):
        m1, m2 = make_machine(), make_machine()
        for m in (m1, m2):
            h = m.create_file("/pmem/f", uid=1000, encrypted=True)
            base = m.mmap(h, pages=1)
            m.load(base, 8)  # fault in
        t1 = m1.elapsed_ns
        m1.store(base, 64)
        cost_store = m1.elapsed_ns - t1
        t2 = m2.elapsed_ns
        m2.persist(base, 64)
        cost_persist = m2.elapsed_ns - t2
        assert cost_persist > cost_store

    def test_persist_reaches_device(self):
        m = make_machine()
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=1)
        writes_before = m.device.write_count
        m.persist(base, 64)
        assert m.device.write_count > writes_before

    def test_size_validation(self):
        m = make_machine()
        with pytest.raises(ValueError):
            m.load(0, 0)


class TestMeasurementWindow:
    def test_mark_excludes_setup(self):
        m = make_machine()
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=1)
        m.persist(base, 4096)
        m.mark_measurement_start()
        result = m.result("w")
        assert result.elapsed_ns == 0.0
        assert result.nvm_writes == 0
        m.load(base, 64)
        result = m.result("w")
        assert result.elapsed_ns > 0

    def test_result_carries_stats(self):
        m = make_machine()
        h = m.create_file("/pmem/f", uid=1000)
        base = m.mmap(h, pages=1)
        m.load(base, 8)
        result = m.result("w")
        assert result.scheme == "fsencr"
        assert any(k.startswith("nvm.") for k in result.stats)


class TestFunctionalIO:
    def test_store_load_roundtrip(self):
        m = make_machine(functional=True)
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=1)
        message = b"hello, encrypted DAX world! " * 3
        m.store_bytes(base + 10, message)
        assert m.load_bytes(base + 10, len(message)) == message

    def test_cross_line_write(self):
        m = make_machine(functional=True)
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=1)
        data = bytes(range(200))  # spans 4 lines
        m.store_bytes(base + 60, data)
        assert m.load_bytes(base + 60, 200) == data

    def test_dimm_residue_is_ciphertext(self):
        m = make_machine(functional=True)
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=1)
        secret = b"S" * 64
        m.store_bytes(base, secret)
        residue = b"".join(m.controller.store.scan().values())
        assert secret not in residue

    def test_plain_scheme_residue_is_plaintext(self):
        """Without encryption the attacker's scan finds the data —
        the contrast the quickstart example demonstrates."""
        m = make_machine(Scheme.EXT4DAX_PLAIN, functional=True)
        h = m.create_file("/pmem/f", uid=1000)
        base = m.mmap(h, pages=1)
        secret = b"S" * 64
        m.store_bytes(base, secret)
        residue = b"".join(m.controller.store.scan().values())
        assert secret in residue


class TestSoftwareSchemeRouting:
    def test_overlay_charges_faults(self):
        m = make_machine(Scheme.SOFTWARE_ENCRYPTION)
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=2)
        m.load(base, 8)
        assert m.overlay.stats.get("page_faults") == 1
        m.load(base + 8, 8)
        assert m.overlay.stats.get("page_faults") == 1  # resident now

    def test_no_df_bits_under_software_scheme(self):
        m = make_machine(Scheme.SOFTWARE_ENCRYPTION)
        h = m.create_file("/pmem/f", uid=1000, encrypted=True)
        base = m.mmap(h, pages=1)
        m.load(base, 8)
        assert m.mmu.page_table.lookup(base // PAGE_SIZE).df is False

    def test_overlay_absent_for_dax_schemes(self):
        assert make_machine(Scheme.FSENCR).overlay is None
        assert make_machine(Scheme.EXT4DAX_PLAIN).overlay is None
