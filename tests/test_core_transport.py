"""Machine migration (§VI): export, authenticate, adopt, and refuse."""

import pytest

from repro.core import (
    FsEncrController,
    TransportError,
    export_machine,
    import_machine,
    set_df,
)
from repro.secmem import MetadataLayout, SecureControllerConfig


LAYOUT = MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)


def populated_controller():
    ctl = FsEncrController(layout=LAYOUT, config=SecureControllerConfig(functional=True))
    ctl.install_file_key(group_id=5, file_id=42, key=bytes([7]) * 16)
    ctl.update_fecb(page=3, group_id=5, file_id=42)
    ctl.write_data(set_df(3 * 4096), b"take me with you, processor!".ljust(64, b"."))
    ctl.write_data(0x9000, b"plain memory too".ljust(64, b"."))
    return ctl


class TestHappyPath:
    def test_roundtrip_preserves_file_data(self):
        src = populated_controller()
        package, dimm = export_machine(src, "transport-pass")
        dst = import_machine(LAYOUT, package, dimm, "transport-pass")
        assert dst.read_data(set_df(3 * 4096)).startswith(b"take me with you")
        assert dst.read_data(0x9000).startswith(b"plain memory too")

    def test_keys_recovered_into_new_ott(self):
        src = populated_controller()
        package, dimm = export_machine(src, "pw")
        dst = import_machine(LAYOUT, package, dimm, "pw")
        entry = dst.ott.lookup(5, 42)
        assert entry is not None and entry.key == bytes([7]) * 16

    def test_destination_can_keep_writing(self):
        src = populated_controller()
        package, dimm = export_machine(src, "pw")
        dst = import_machine(LAYOUT, package, dimm, "pw")
        dst.write_data(set_df(3 * 4096 + 64), b"\x11" * 64)
        assert dst.read_data(set_df(3 * 4096 + 64)) == b"\x11" * 64

    def test_chip_keys_travel_sealed(self):
        src = populated_controller()
        package, _ = export_machine(src, "pw")
        assert src.keys.memory_key not in package.sealed_keys
        assert src.keys.ott_key not in package.sealed_keys


class TestRefusals:
    def test_wrong_passphrase_refused(self):
        src = populated_controller()
        package, dimm = export_machine(src, "right")
        with pytest.raises(TransportError):
            import_machine(LAYOUT, package, dimm, "wrong")

    def test_tampered_dimm_refused(self):
        src = populated_controller()
        package, dimm = export_machine(src, "pw")
        dimm.fecb.block(3).counters.minors[0] ^= 1  # in-transit tamper
        with pytest.raises(TransportError):
            import_machine(LAYOUT, package, dimm, "pw")

    def test_tampered_package_refused(self):
        src = populated_controller()
        package, dimm = export_machine(src, "pw")
        forged = type(package)(
            sealed_keys=bytes([package.sealed_keys[0] ^ 1]) + package.sealed_keys[1:],
            merkle_root=package.merkle_root,
            tag=package.tag,
        )
        with pytest.raises(TransportError):
            import_machine(LAYOUT, forged, dimm, "pw")

    def test_wrong_passphrase_import_never_yields_plaintext(self):
        """Even bypassing the tag, a wrong-passphrase unseal yields
        wrong keys that decrypt to noise — defence beyond the tag."""
        from repro.core.transport import _tag, _transport_pad
        from repro.crypto.otp import xor_bytes

        src = populated_controller()
        package, dimm = export_machine(src, "right")
        # Adversary recomputes a valid tag for their own passphrase.
        forged = type(package)(
            sealed_keys=package.sealed_keys,
            merkle_root=package.merkle_root,
            tag=_tag("wrong", package.sealed_keys, package.merkle_root),
        )
        from repro.core import KeyUnavailableError

        try:
            dst = import_machine(LAYOUT, forged, dimm, "wrong")
        except TransportError:
            return  # refused outright — fine
        # Wrong keys: either the OTT region fails its tags (no key at
        # all) or decryption yields noise — never the plaintext.
        try:
            recovered = dst.read_data(set_df(3 * 4096))
        except KeyUnavailableError:
            return
        assert not recovered.startswith(b"take me")
