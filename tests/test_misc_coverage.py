"""Remaining corners: plain controller, tails analysis, package API."""

import pytest

from repro.mem import MemoryRequest, PlainMemoryController


class TestPlainController:
    def test_read_write_latencies(self):
        ctl = PlainMemoryController()
        read = ctl.access(MemoryRequest(addr=0x1000, is_write=False))
        write = ctl.access(MemoryRequest(addr=0x1040, is_write=True))
        assert read > 0 and write > 0
        assert ctl.stats.get("read_requests") == 1
        assert ctl.stats.get("write_requests") == 1

    def test_persist_flag_honoured(self):
        a, b = PlainMemoryController(), PlainMemoryController()
        posted = a.access(MemoryRequest(addr=0x1000, is_write=True))
        persisted = b.access(MemoryRequest(addr=0x1000, is_write=True, persist=True))
        assert persisted > posted

    def test_functional_passthrough(self):
        ctl = PlainMemoryController()
        ctl.access(MemoryRequest(addr=0x1000, is_write=True, data=b"\x7e" * 64))
        assert ctl.read_data(0x1000) == b"\x7e" * 64

    def test_request_validation(self):
        with pytest.raises(ValueError):
            MemoryRequest(addr=-1, is_write=False)
        with pytest.raises(ValueError):
            MemoryRequest(addr=0, is_write=False, persist=True)
        with pytest.raises(ValueError):
            MemoryRequest(addr=0, is_write=False, data=b"x" * 64)


class TestTailsAnalysis:
    def test_comparison_and_render(self):
        from repro.analysis import render_tails, tail_latency_comparison
        from repro.sim import Scheme
        from repro.workloads import make_dax_micro

        summaries = tail_latency_comparison(
            lambda: make_dax_micro("DAX-1", iterations=300),
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        assert set(summaries) == {"baseline_secure", "fsencr"}
        for summary in summaries.values():
            assert summary["total"] > 0
            assert summary["p50_ns"] <= summary["p99_ns"]
        text = render_tails(summaries)
        assert "p99" in text and "fsencr" in text


class TestPackageApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.crypto", "repro.mem", "repro.secmem", "repro.kernel",
            "repro.fs", "repro.core", "repro.sim", "repro.workloads",
            "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert getattr(module, name) is not None, f"{module_name}.{name}"
