"""Crash / reboot lifecycle: fault dispositions and the recovery paths.

Each test stages real writes on a functional FsEncr machine, crashes it
under a targeted :class:`FaultPlan`, reboots through the real recovery
paths, and audits the survivors line by line.  The contract under test
is the paper's crash-consistency story end to end: drained writes come
back verbatim, dropped writes roll back to the previous durable
version, and torn writes or media flips are *detected* — never returned
as silently wrong bytes.
"""

from __future__ import annotations

import pytest

from repro.faults import CrashDomain, FaultPlan, LineWrite, TEAR_BYTES
from repro.secmem.ecc import check_line
from repro.sim import Machine, MachineConfig, Scheme

LINE = 64


def make_machine(**overrides):
    config = MachineConfig(scheme=Scheme.FSENCR, functional=True, **overrides)
    machine = Machine(config)
    machine.add_user(uid=1000, gid=100, passphrase="pw")
    return machine


def stage_writes(machine, lines=4, encrypted=True, persist=True):
    """Write ``lines`` distinct cache lines into a fresh mapped file;
    returns {paddr: plaintext} for every staged line."""
    handle = machine.create_file("/pmem/f", uid=1000, encrypted=encrypted)
    base = machine.mmap(handle, pages=1)
    for i in range(lines):
        machine.store_bytes(base + i * LINE, bytes([i + 1]) * LINE)
        if persist:
            machine.persist(base + i * LINE, LINE)
    return dict(machine.controller._plaintext_shadow)


def read_back(machine, addr):
    """Post-reboot read through the full verify path, or the exception."""
    try:
        return machine.controller.read_data(addr)
    except Exception as exc:  # noqa: BLE001 - the exception *is* the answer
        return exc


class TestCrashDispositions:
    def test_all_drained_recovers_every_new_value(self):
        machine = make_machine()
        truth = stage_writes(machine)
        crash = machine.crash(FaultPlan(drain_fraction=1.0))
        assert crash.inflight == crash.drained == len(truth)
        assert crash.dropped == crash.torn == 0
        recovery = machine.reboot()
        assert recovery.failed_lines == ()
        assert recovery.lines_recovered == recovery.lines_checked > 0
        for addr, expected in truth.items():
            assert read_back(machine, addr) == expected

    def test_dropped_first_write_is_detected_not_silent(self):
        """A dropped *first* write rolls back to erased NVM with no ECC:
        the line must fail recovery loudly, not decrypt to garbage."""
        machine = make_machine()
        truth = stage_writes(machine, lines=2)
        crash = machine.crash(FaultPlan(drain_fraction=0.0, torn_probability=0.0))
        assert crash.dropped == len(truth)
        machine.reboot()
        for addr, expected in truth.items():
            got = read_back(machine, addr)
            assert got != expected  # the write genuinely never happened
            if isinstance(got, bytes):
                # If it decrypts at all, plaintext ECC must disown it.
                ecc = machine.controller.store.read_ecc(addr)
                assert ecc is None or not check_line(got, ecc)

    def test_dropped_overwrite_rolls_back_to_previous_version(self):
        # stop_loss=8 keeps the counter journal *behind* both versions:
        # with the default window a stop-loss write-through lands between
        # v1 and v2, and a persisted counter ahead of the rolled-back
        # seal is (correctly) a detection, not a rollback.
        machine = make_machine(stop_loss=8)
        handle = machine.create_file("/pmem/f", uid=1000, encrypted=True)
        base = machine.mmap(handle, pages=1)
        machine.store_bytes(base, b"\x11" * LINE)
        machine.persist(base, LINE)
        old = dict(machine.controller._plaintext_shadow)
        # Quiesce: the v1 tail is durable, only v2 is in flight at crash.
        machine.controller.crash_domain.drain_all()
        machine.store_bytes(base, b"\x22" * LINE)
        machine.persist(base, LINE)
        machine.crash(FaultPlan(drain_fraction=0.0, torn_probability=0.0))
        recovery = machine.reboot()
        (addr,) = old.keys()
        assert addr not in recovery.failed_lines
        assert read_back(machine, addr) == old[addr] == b"\x11" * LINE

    def test_torn_writes_never_read_back_silently_wrong(self):
        machine = make_machine()
        truth = stage_writes(machine, lines=4)
        crash = machine.crash(FaultPlan(seed=0xBAD, drain_fraction=0.0, torn_probability=1.0))
        assert crash.torn == len(truth)
        machine.reboot()
        detected = 0
        for addr, expected in truth.items():
            got = read_back(machine, addr)
            if not isinstance(got, bytes):
                detected += 1
                continue
            ecc = machine.controller.store.read_ecc(addr)
            if ecc is None or not check_line(got, ecc):
                detected += 1
                continue
            # A tear that happened to land all-old or all-new is a
            # consistent version, which is fine; anything else is not.
            fate = crash.line_fates[addr]
            assert got in (expected, fate.old_plain or bytes(LINE))
        assert detected > 0  # word-mixed lines must trip the ECC

    def test_media_bit_flip_is_detected(self):
        machine = make_machine()
        truth = stage_writes(machine, lines=2)
        crash = machine.crash(FaultPlan(drain_fraction=1.0, bit_flips=1))
        ((flip_addr, _),) = crash.bit_flips
        machine.reboot()
        got = read_back(machine, flip_addr)
        if isinstance(got, bytes):
            ecc = machine.controller.store.read_ecc(flip_addr)
            assert ecc is None or not check_line(got, ecc)
            assert got != truth[flip_addr]

    def test_ott_key_survives_via_spill_region(self):
        machine = make_machine()
        stage_writes(machine, encrypted=True)
        machine.crash(FaultPlan(drain_fraction=1.0))
        recovery = machine.reboot()
        assert recovery.ott_keys_recovered >= 1
        assert recovery.merkle_leaves_rebuilt > 0


class TestExpandedFaultVocabulary:
    def test_torn_burst_groups_contiguous_lines(self):
        machine = make_machine()
        truth = stage_writes(machine, lines=8)
        crash = machine.crash(
            FaultPlan(seed=0xB0, drain_fraction=0.0, torn_probability=1.0, torn_burst=4)
        )
        assert crash.torn == len(truth)
        # Bursts group lines: strictly fewer tear events than torn lines.
        assert 1 <= crash.torn_bursts < crash.torn
        machine.reboot()
        for addr, expected in truth.items():
            got = read_back(machine, addr)
            if not isinstance(got, bytes):
                continue  # detected outright
            ecc = machine.controller.store.read_ecc(addr)
            if ecc is None or not check_line(got, ecc):
                continue  # word-mixed line tripped the plaintext ECC
            fate = crash.line_fates[addr]
            assert got in (expected, fate.old_plain or bytes(LINE))

    def test_torn_burst_one_means_independent_tears(self):
        machine = make_machine()
        truth = stage_writes(machine, lines=4)
        crash = machine.crash(
            FaultPlan(seed=0xB1, drain_fraction=0.0, torn_probability=1.0, torn_burst=1)
        )
        assert crash.torn == len(truth)
        assert crash.torn_bursts == crash.torn  # every tear is its own event

    @pytest.mark.parametrize("scheme", [Scheme.FSENCR, Scheme.BASELINE_SECURE])
    def test_counter_region_flips_detected_or_recovered(self, scheme):
        config = MachineConfig(scheme=scheme, functional=True)
        machine = Machine(config)
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        truth = stage_writes(machine, lines=4)
        crash = machine.crash(
            FaultPlan(seed=0xCF, drain_fraction=1.0, torn_probability=0.0, counter_flips=3)
        )
        assert len(crash.metadata_flips) == 3
        machine.reboot()
        for addr, expected in truth.items():
            got = read_back(machine, addr)
            if isinstance(got, bytes) and got != expected:
                # Accepted bytes that differ from the only durable
                # version must fail the plaintext ECC — never silent.
                ecc = machine.controller.store.read_ecc(addr)
                assert ecc is None or not check_line(got, ecc)

    def test_merkle_node_flip_is_flagged_poisoned(self):
        machine = make_machine()
        stage_writes(machine, lines=2)
        machine.crash(FaultPlan(drain_fraction=1.0, torn_probability=0.0))
        level, index = machine.controller.merkle.stored_nodes()[0]
        machine.controller.merkle.flip_node_bit(level, index, bit=5)
        recovery = machine.reboot()
        assert recovery.merkle_nodes_poisoned >= 1
        assert machine.controller.stats.get("merkle_poisoned_nodes") >= 1

    def test_ott_slot_flip_rejects_key_not_garbage(self):
        machine = make_machine()
        stage_writes(machine, lines=2, encrypted=True)
        machine.crash(FaultPlan(drain_fraction=1.0, torn_probability=0.0))
        slot = machine.controller.ott_region.occupied_slots()[0]
        machine.controller.ott_region.flip_bit(slot, bit=17)
        recovery = machine.reboot()
        assert recovery.ott_slots_rejected >= 1
        assert machine.controller.stats.get("ott_recovery_rejects") >= 1


class TestCrashedMachineGuard:
    def test_accesses_on_crashed_machine_raise(self):
        machine = make_machine()
        handle = machine.create_file("/pmem/f", uid=1000, encrypted=True)
        base = machine.mmap(handle, pages=1)
        machine.store_bytes(base, b"\x42" * LINE)
        machine.persist(base, LINE)
        machine.crash(FaultPlan(drain_fraction=1.0))
        for access in (
            lambda: machine.load(base),
            lambda: machine.store(base),
            lambda: machine.persist(base, LINE),
            lambda: machine.store_bytes(base, b"\x43" * LINE),
            lambda: machine.load_bytes(base, LINE),
        ):
            with pytest.raises(RuntimeError, match="crashed"):
                access()
        machine.reboot()
        machine.load(base)  # alive again
        assert machine.load_bytes(base, LINE) == b"\x42" * LINE


class TestLifecycleProtocol:
    def test_reboot_without_crash_raises(self):
        machine = make_machine()
        with pytest.raises(RuntimeError, match="without a preceding crash"):
            machine.reboot()

    def test_crash_twice_raises(self):
        machine = make_machine()
        stage_writes(machine, lines=1)
        machine.crash(FaultPlan())
        with pytest.raises(RuntimeError, match="already crashed"):
            machine.crash(FaultPlan())
        machine.reboot()  # and the cycle can restart
        machine.crash(FaultPlan())
        machine.reboot()

    def test_same_seed_is_deterministic(self):
        def run():
            machine = make_machine()
            truth = stage_writes(machine)
            crash = machine.crash(
                FaultPlan(seed=0x5EED, drain_fraction=0.25, torn_probability=0.5, bit_flips=2)
            )
            recovery = machine.reboot()
            reads = {addr: repr(read_back(machine, addr)) for addr in truth}
            return crash, recovery, reads

        assert run() == run()

    def test_wpq_entries_reported_lost(self):
        machine = make_machine(model_wpq=True)
        stage_writes(machine)
        crash = machine.crash(FaultPlan(drain_fraction=0.0, torn_probability=0.0))
        assert crash.wpq_entries_lost > 0

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drain_fraction=1.5)
        with pytest.raises(ValueError):
            FaultPlan(torn_probability=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(bit_flips=-1)

    def test_plan_derive_varies_seed_only(self):
        plan = FaultPlan(seed=1, drain_fraction=0.5)
        derived = plan.derive(7)
        assert derived.seed != plan.seed
        assert derived.drain_fraction == plan.drain_fraction
        assert plan.derive(7) == derived  # derivation itself is pure


class TestCrashDomainUnit:
    def _write(self, addr, old=b"o", new=b"n"):
        return dict(
            addr=addr,
            old_cipher=old * LINE,
            old_ecc=bytes(8),
            old_plain=old * LINE,
            new_cipher=new * LINE,
            new_ecc=bytes(8),
            new_plain=new * LINE,
        )

    def test_coalesces_same_address(self):
        domain = CrashDomain(depth=4)
        domain.record(**self._write(0x100, old=b"a", new=b"b"))
        domain.record(**self._write(0x100, old=b"b", new=b"c"))
        (entry,) = domain.inflight()
        assert entry.old_plain == b"a" * LINE  # oldest pre-image kept
        assert entry.new_plain == b"c" * LINE  # newest post-image kept

    def test_fifo_overflow_counts_as_drained(self):
        domain = CrashDomain(depth=2)
        for i in range(3):
            domain.record(**self._write(0x100 + i * LINE))
        assert len(domain) == 2
        assert domain.drained_writes == 1
        assert [w.addr for w in domain.inflight()] == [0x100 + LINE, 0x100 + 2 * LINE]

    def test_tear_granularity_is_device_word(self):
        assert TEAR_BYTES == 8
        assert LINE % TEAR_BYTES == 0
