"""Kernel services: MMIO channel, keyring, page cache, cost model."""

import pytest

from repro.crypto import generate_fek
from repro.kernel import (
    Keyring,
    KeyringError,
    MMIORegisters,
    PageCache,
    PageCacheConfig,
    SoftwareCosts,
)


class _RecordingTarget:
    """A fake memory controller recording MMIO verbs."""

    def __init__(self):
        self.calls = []
        self.accept_admin = True

    def install_file_key(self, group_id, file_id, key):
        self.calls.append(("install", group_id, file_id, key))

    def revoke_file_key(self, group_id, file_id):
        self.calls.append(("revoke", group_id, file_id))

    def update_fecb(self, page, group_id, file_id):
        self.calls.append(("fecb", page, group_id, file_id))

    def admin_login(self, credential_digest):
        self.calls.append(("admin", credential_digest))
        return self.accept_admin


class TestMMIO:
    def test_install_reaches_target_and_charges(self):
        target = _RecordingTarget()
        mmio = MMIORegisters(target=target)
        latency = mmio.install_file_key(1, 2, b"k" * 16)
        assert target.calls == [("install", 1, 2, b"k" * 16)]
        assert latency == 5 * mmio.write_latency_ns

    def test_revoke(self):
        target = _RecordingTarget()
        mmio = MMIORegisters(target=target)
        latency = mmio.revoke_file_key(1, 2)
        assert target.calls == [("revoke", 1, 2)]
        assert latency == 3 * mmio.write_latency_ns

    def test_update_fecb(self):
        target = _RecordingTarget()
        mmio = MMIORegisters(target=target)
        latency = mmio.update_fecb(9, 1, 2)
        assert target.calls == [("fecb", 9, 1, 2)]
        assert latency == 4 * mmio.write_latency_ns

    def test_admin_login_passthrough(self):
        target = _RecordingTarget()
        mmio = MMIORegisters(target=target)
        ok, latency = mmio.admin_login(b"digest")
        assert ok is True and latency > 0
        target.accept_admin = False
        ok, _ = mmio.admin_login(b"digest")
        assert ok is False

    def test_stats(self):
        mmio = MMIORegisters(target=_RecordingTarget())
        mmio.install_file_key(1, 2, b"k" * 16)
        mmio.update_fecb(9, 1, 2)
        assert mmio.stats.get("install_key") == 1
        assert mmio.stats.get("update_fecb") == 1
        assert mmio.stats.get("register_writes") == 9


class TestKeyring:
    def test_login_session_wrap_unwrap(self):
        ring = Keyring()
        session = ring.login(1000, "hunter2")
        fek = generate_fek(b"e")
        assert session.unwrap(session.wrap(fek)) == fek

    def test_wrong_user_cannot_unwrap(self):
        ring = Keyring()
        alice = ring.login(1000, "alice-pass")
        mallory = ring.login(2000, "guessed-pass")
        wrapped = alice.wrap(generate_fek(b"e"))
        with pytest.raises(KeyringError):
            mallory.unwrap(wrapped)

    def test_same_passphrase_same_fekek(self):
        ring = Keyring()
        a = ring.login(1000, "pw")
        ring.logout(1000)
        b = ring.login(1000, "pw")
        assert a.fekek == b.fekek

    def test_no_session_raises(self):
        with pytest.raises(KeyringError):
            Keyring().session(1000)

    def test_logout(self):
        ring = Keyring()
        ring.login(1000, "pw")
        ring.logout(1000)
        assert not ring.has_session(1000)

    def test_admin_digest(self):
        ring = Keyring()
        with pytest.raises(KeyringError):
            _ = ring.admin_digest
        ring.set_admin_passphrase("root-pw")
        assert ring.admin_digest == ring.credential_digest("root-pw")
        assert ring.admin_digest != ring.credential_digest("other")


class TestPageCache:
    def test_insert_lookup(self):
        pc = PageCache(PageCacheConfig(capacity_pages=4))
        pc.insert(1, 0)
        assert pc.lookup(1, 0) is not None
        assert pc.lookup(1, 1) is None

    def test_lru_eviction(self):
        pc = PageCache(PageCacheConfig(capacity_pages=2))
        pc.insert(1, 0)
        pc.insert(1, 1)
        pc.lookup(1, 0)
        evicted = pc.insert(1, 2)
        assert (evicted.file_id, evicted.page_index) == (1, 1)

    def test_dirty_propagation(self):
        pc = PageCache(PageCacheConfig(capacity_pages=1))
        pc.insert(1, 0, dirty=True)
        evicted = pc.insert(1, 1)
        assert evicted.dirty

    def test_mark_dirty(self):
        pc = PageCache(PageCacheConfig(capacity_pages=2))
        pc.insert(1, 0)
        pc.mark_dirty(1, 0)
        evicted = pc.insert(1, 1) or pc.insert(1, 2)
        assert evicted.dirty

    def test_invalidate_file_returns_dirty_only(self):
        pc = PageCache(PageCacheConfig(capacity_pages=8))
        pc.insert(1, 0, dirty=True)
        pc.insert(1, 1, dirty=False)
        pc.insert(2, 0, dirty=True)
        dirty = pc.invalidate_file(1)
        assert [(p.file_id, p.page_index) for p in dirty] == [(1, 0)]
        assert pc.lookup(1, 1) is None
        assert pc.lookup(2, 0) is not None

    def test_sync_cleans_in_place(self):
        pc = PageCache(PageCacheConfig(capacity_pages=8))
        pc.insert(1, 0, dirty=True)
        dirty = pc.sync()
        assert len(dirty) == 1
        assert pc.sync() == []
        assert pc.resident_pages == 1


class TestSoftwareCosts:
    def test_page_costs_scale_with_page_size(self):
        costs = SoftwareCosts()
        assert costs.page_copy_ns == pytest.approx(4096 * costs.copy_ns_per_byte)
        assert costs.page_crypto_ns > costs.page_copy_ns

    def test_encrypted_fault_strictly_costlier(self):
        costs = SoftwareCosts()
        assert costs.encrypted_fault_ns() > costs.conventional_fault_ns()

    def test_dax_fault_much_cheaper_than_conventional(self):
        """Figure 1's point: DAX removes the copy and FS/driver layers."""
        costs = SoftwareCosts()
        assert costs.dax_fault_ns() < costs.conventional_fault_ns() / 1.5
