"""Generic set-associative cache: LRU, dirtiness, flush primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import CacheConfig, SetAssociativeCache


def small_cache(ways=2, sets=4):
    return SetAssociativeCache(
        CacheConfig(name="t", size_bytes=ways * sets * 64, ways=ways)
    )


class TestConfig:
    def test_num_sets(self):
        assert CacheConfig(name="c", size_bytes=32 * 1024, ways=8).num_sets == 64

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=1000, ways=8)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        hit, _ = cache.access(0, is_write=False)
        assert not hit
        hit, _ = cache.access(0, is_write=False)
        assert hit

    def test_same_line_different_bytes_hit(self):
        cache = small_cache()
        cache.access(0, is_write=False)
        hit, _ = cache.access(63, is_write=False)
        assert hit

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0, False)
        cache.access(64, False)
        cache.access(0, False)  # refresh 0
        _, eviction = cache.access(128, False)  # evicts 64, not 0
        assert eviction is not None and eviction.addr == 64
        assert cache.lookup(0)

    def test_set_isolation(self):
        cache = small_cache(ways=1, sets=2)
        cache.access(0, False)  # set 0
        cache.access(64, False)  # set 1
        assert cache.lookup(0) and cache.lookup(64)

    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0, False)
        cache.access(0, False)
        cache.access(0, False)
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestDirtiness:
    def test_write_dirties(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        _, eviction = cache.access(64, is_write=False)
        assert eviction.dirty

    def test_read_stays_clean(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=False)
        _, eviction = cache.access(64, is_write=False)
        assert not eviction.dirty

    def test_write_hit_dirties_existing(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=False)
        cache.access(0, is_write=True)
        _, eviction = cache.access(64, is_write=False)
        assert eviction.dirty


class TestFlushPrimitives:
    def test_writeback_line_cleans(self):
        cache = small_cache()
        cache.access(0, is_write=True)
        assert cache.writeback_line(0) is True
        assert cache.writeback_line(0) is False  # already clean
        assert cache.lookup(0)  # clwb keeps the line

    def test_writeback_absent_line(self):
        assert small_cache().writeback_line(0) is False

    def test_invalidate_line_removes(self):
        cache = small_cache()
        cache.access(0, is_write=True)
        eviction = cache.invalidate_line(0)
        assert eviction is not None and eviction.dirty
        assert not cache.lookup(0)

    def test_invalidate_absent_line(self):
        assert small_cache().invalidate_line(0) is None

    def test_drain_returns_only_dirty(self):
        cache = small_cache()
        cache.access(0, is_write=True)
        cache.access(64, is_write=False)
        victims = cache.drain()
        assert [v.addr for v in victims] == [0]
        assert cache.occupancy == 0


class TestFill:
    def test_fill_then_lookup(self):
        cache = small_cache()
        cache.fill(0)
        assert cache.lookup(0)

    def test_fill_existing_can_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, dirty=False)
        cache.fill(0, dirty=True)
        _, eviction = cache.access(64, False)
        assert eviction.dirty

    def test_contents_snapshot(self):
        cache = small_cache()
        cache.access(0, is_write=True)
        cache.access(64, is_write=False)
        assert cache.contents() == {0: True, 64: False}


class TestOccupancyInvariant:
    @given(
        addrs=st.lists(st.integers(0, 31).map(lambda x: x * 64), min_size=1, max_size=200),
        writes=st.lists(st.booleans(), min_size=1, max_size=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs, writes):
        cache = small_cache(ways=2, sets=4)
        capacity = 2 * 4
        for addr, w in zip(addrs, writes):
            cache.access(addr, is_write=w)
            assert cache.occupancy <= capacity
