"""Multi-process machine: isolated address spaces, shared files, DF-bit."""

import pytest

from repro.kernel import PageFault
from repro.mem import PAGE_SIZE
from repro.sim import Machine, MachineConfig, Scheme


def make_machine(functional=False):
    machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=functional))
    machine.add_user(uid=1000, gid=100, passphrase="alice")
    machine.add_user(uid=2000, gid=200, passphrase="bob")
    return machine


class TestProcessLifecycle:
    def test_default_process_is_zero(self):
        assert make_machine().current_pid == 0

    def test_create_and_switch(self):
        machine = make_machine()
        machine.create_process(1)
        machine.switch_process(1)
        assert machine.current_pid == 1

    def test_duplicate_pid_rejected(self):
        machine = make_machine()
        with pytest.raises(ValueError):
            machine.create_process(0)

    def test_switch_to_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_machine().switch_process(7)

    def test_switch_charges_time(self):
        machine = make_machine()
        machine.create_process(1)
        before = machine.elapsed_ns
        machine.switch_process(1)
        assert machine.elapsed_ns > before

    def test_switch_to_self_free(self):
        machine = make_machine()
        before = machine.elapsed_ns
        machine.switch_process(0)
        assert machine.elapsed_ns == before


class TestIsolation:
    def test_mappings_are_per_process(self):
        machine = make_machine()
        handle = machine.create_file("/pmem/f", uid=1000)
        base = machine.mmap(handle, pages=1)
        machine.load(base, 8)  # fine in process 0
        machine.create_process(1)
        machine.switch_process(1)
        with pytest.raises(PageFault):
            machine.load(base, 8)  # unmapped in process 1

    def test_same_vaddr_different_files(self):
        """Both processes can use overlapping virtual ranges."""
        machine = make_machine(functional=True)
        a = machine.create_file("/pmem/a", uid=1000, encrypted=True)
        base_a = machine.mmap(a, pages=1)
        machine.store_bytes(base_a, b"process zero data")

        machine.create_process(1)
        machine.switch_process(1)
        b = machine.create_file("/pmem/b", uid=2000, encrypted=True)
        base_b = machine.mmap(b, pages=1)
        assert base_b == base_a  # same virtual address, fresh space
        machine.store_bytes(base_b, b"process one data!")

        machine.switch_process(0)
        assert machine.load_bytes(base_a, 17) == b"process zero data"
        machine.switch_process(1)
        assert machine.load_bytes(base_b, 17) == b"process one data!"

    def test_context_switch_flushes_tlb(self):
        machine = make_machine()
        handle = machine.create_file("/pmem/f", uid=1000)
        base = machine.mmap(handle, pages=1)
        machine.load(base, 8)
        machine.create_process(1)
        machine.switch_process(1)
        machine.switch_process(0)
        # Back in process 0: page table intact, but the TLB was flushed.
        assert machine.mmu.tlb.occupancy == 0
        machine.load(base, 8)  # re-walks, no fault


class TestSharedFiles:
    def test_two_processes_share_a_dax_file(self):
        """Shared mmap: both processes see one another's writes through
        the shared physical pages (and the same FECB/key)."""
        machine = make_machine(functional=True)
        handle = machine.create_file("/pmem/shared", uid=1000, encrypted=True)
        base0 = machine.mmap(handle, pages=1)
        machine.store_bytes(base0, b"written by p0")

        machine.create_process(1)
        machine.switch_process(1)
        shared = machine.open_file("/pmem/shared", uid=1000)
        base1 = machine.mmap(shared, pages=1)
        assert machine.load_bytes(base1, 13) == b"written by p0"
        machine.store_bytes(base1, b"updated by p1")

        machine.switch_process(0)
        assert machine.load_bytes(base0, 13) == b"updated by p1"

    def test_df_bit_set_in_both_processes(self):
        machine = make_machine()
        handle = machine.create_file("/pmem/shared", uid=1000, encrypted=True)
        base0 = machine.mmap(handle, pages=1)
        machine.load(base0, 8)
        vpn0 = base0 // PAGE_SIZE
        pte0 = machine.mmu.page_table.lookup(vpn0)

        machine.create_process(1)
        machine.switch_process(1)
        shared = machine.open_file("/pmem/shared", uid=1000)
        base1 = machine.mmap(shared, pages=1)
        machine.load(base1, 8)
        pte1 = machine.mmu.page_table.lookup(base1 // PAGE_SIZE)

        assert pte0.df and pte1.df
        assert pte0.pfn == pte1.pfn  # same physical page
