"""Machine configuration and result/record arithmetic."""

import json

import pytest

from repro.sim import Comparison, MachineConfig, ResultTable, RunResult, Scheme
from repro.sim.config import SCALE_FACTOR, scaled_hierarchy


class TestScheme:
    def test_dax_usage(self):
        assert Scheme.FSENCR.uses_dax
        assert Scheme.EXT4DAX_PLAIN.uses_dax
        assert Scheme.BASELINE_SECURE.uses_dax
        assert not Scheme.SOFTWARE_ENCRYPTION.uses_dax

    def test_file_encryption_flag(self):
        assert Scheme.FSENCR.has_file_encryption
        assert Scheme.SOFTWARE_ENCRYPTION.has_file_encryption
        assert not Scheme.BASELINE_SECURE.has_file_encryption
        assert not Scheme.EXT4DAX_PLAIN.has_file_encryption


class TestMachineConfig:
    def test_default_scaling(self):
        cfg = MachineConfig()
        assert cfg.hierarchy.l3.size_bytes == 4 * 1024 * 1024 // SCALE_FACTOR
        assert cfg.metadata_cache.size_bytes == 512 * 1024 // SCALE_FACTOR

    def test_paper_scale_restores_table3(self):
        cfg = MachineConfig.paper_scale()
        assert cfg.hierarchy.l1.size_bytes == 32 * 1024
        assert cfg.hierarchy.l3.size_bytes == 4 * 1024 * 1024
        assert cfg.metadata_cache.size_bytes == 512 * 1024

    def test_with_scheme_preserves_rest(self):
        cfg = MachineConfig(aes_latency_ns=55.0)
        other = cfg.with_scheme(Scheme.BASELINE_SECURE)
        assert other.scheme is Scheme.BASELINE_SECURE
        assert other.aes_latency_ns == 55.0

    def test_with_metadata_cache(self):
        cfg = MachineConfig().with_metadata_cache(64 * 1024)
        assert cfg.metadata_cache.size_bytes == 64 * 1024

    def test_controller_config_propagates(self):
        cfg = MachineConfig(aes_latency_ns=99.0, stop_loss=7, functional=True)
        ctl_cfg = cfg.controller_config()
        assert ctl_cfg.aes_latency_ns == 99.0
        assert ctl_cfg.stop_loss == 7
        assert ctl_cfg.functional

    @pytest.mark.parametrize("kwargs", [
        dict(pmem_base=100),
        dict(pmem_bytes=100),
        dict(pmem_base=512 * 1024 * 1024, pmem_bytes=128 * 1024 * 1024),
        dict(write_contention_factor=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)

    def test_table3_timing_defaults(self):
        cfg = MachineConfig()
        assert cfg.nvm_timing.read_ns == 60.0
        assert cfg.nvm_timing.write_ns == 150.0
        assert cfg.aes_latency_ns == 40.0


def run(workload="w", scheme="fsencr", ns=200.0, reads=20, writes=10):
    return RunResult(workload=workload, scheme=scheme, elapsed_ns=ns, nvm_reads=reads, nvm_writes=writes)


class TestComparison:
    def test_ratios(self):
        c = Comparison.of(run(ns=220, reads=22, writes=11), run(scheme="base", ns=200))
        assert c.slowdown == pytest.approx(1.1)
        assert c.normalized_reads == pytest.approx(1.1)
        assert c.normalized_writes == pytest.approx(1.1)
        assert c.overhead_percent == pytest.approx(10.0)

    def test_zero_baseline(self):
        c = Comparison.of(run(writes=5), run(scheme="b", writes=0))
        assert c.normalized_writes == float("inf")
        c2 = Comparison.of(run(writes=0), run(scheme="b", writes=0))
        assert c2.normalized_writes == 0.0

    def test_workload_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Comparison.of(run(workload="a"), run(workload="b"))


class TestResultTable:
    def make_table(self):
        table = ResultTable("test")
        table.add(Comparison.of(run(ns=220), run(scheme="b", ns=200)))
        table.add(Comparison.of(run(workload="w2", ns=150), run(workload="w2", scheme="b", ns=100)))
        return table

    def test_mean(self):
        assert self.make_table().mean("slowdown") == pytest.approx((1.1 + 1.5) / 2)

    def test_geometric_mean(self):
        gm = self.make_table().geometric_mean("slowdown")
        assert gm == pytest.approx((1.1 * 1.5) ** 0.5)

    def test_render_contains_rows_and_average(self):
        text = self.make_table().render()
        assert "w2" in text and "average" in text and "1.500" in text

    def test_save_json(self, tmp_path):
        path = tmp_path / "out.json"
        self.make_table().save_json(path, extra={"note": "x"})
        payload = json.loads(path.read_text())
        assert payload["title"] == "test"
        assert len(payload["rows"]) == 2
        assert payload["note"] == "x"

    def test_empty_table_means(self):
        table = ResultTable("empty")
        assert table.mean() == 0.0
        assert table.geometric_mean() == 0.0


class TestRunResultSerde:
    def test_roundtrip(self):
        r = run()
        r.stats["nvm.reads"] = 20
        assert RunResult.from_dict(r.to_dict()) == r
