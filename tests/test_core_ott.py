"""Open Tunnel Table and its encrypted spill region."""

import pytest

from repro.core import (
    FILE_ID_BITS,
    GROUP_ID_BITS,
    EncryptedOTTRegion,
    KeyUnavailableError,
    OpenTunnelTable,
    OTTEntry,
)


def entry(group=1, file=1, fill=0xAB):
    return OTTEntry(group_id=group, file_id=file, key=bytes([fill]) * 16)


class TestOTTEntry:
    def test_field_widths_match_paper(self):
        assert GROUP_ID_BITS == 18
        assert FILE_ID_BITS == 14

    @pytest.mark.parametrize("kwargs", [
        dict(group_id=1 << 18, file_id=0, key=bytes(16)),
        dict(group_id=-1, file_id=0, key=bytes(16)),
        dict(group_id=0, file_id=1 << 14, key=bytes(16)),
        dict(group_id=0, file_id=0, key=bytes(8)),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OTTEntry(**kwargs)


class TestOpenTunnelTable:
    def test_paper_capacity(self):
        assert OpenTunnelTable().capacity == 8 * 128

    def test_paper_latency_is_20_cycles(self):
        assert OpenTunnelTable().lookup_latency_ns == 20.0

    def test_insert_lookup(self):
        ott = OpenTunnelTable()
        ott.insert(entry(1, 2))
        found = ott.lookup(1, 2)
        assert found is not None and found.key == bytes([0xAB]) * 16

    def test_miss_returns_none(self):
        assert OpenTunnelTable().lookup(1, 2) is None

    def test_reinsert_updates_key(self):
        ott = OpenTunnelTable()
        ott.insert(entry(1, 2, fill=0x11))
        victim = ott.insert(entry(1, 2, fill=0x22))
        assert victim is None
        assert ott.lookup(1, 2).key == bytes([0x22]) * 16
        assert len(ott) == 1

    def test_lru_eviction(self):
        ott = OpenTunnelTable(banks=1, entries_per_bank=2)
        ott.insert(entry(1, 1))
        ott.insert(entry(1, 2))
        ott.lookup(1, 1)  # refresh
        victim = ott.insert(entry(1, 3))
        assert victim is not None and victim.ident == (1, 2)

    def test_remove(self):
        ott = OpenTunnelTable()
        ott.insert(entry(1, 2))
        assert ott.remove(1, 2) is True
        assert ott.remove(1, 2) is False
        assert ott.lookup(1, 2) is None

    def test_entries_snapshot(self):
        ott = OpenTunnelTable()
        ott.insert(entry(1, 1))
        ott.insert(entry(1, 2))
        assert {e.ident for e in ott.entries()} == {(1, 1), (1, 2)}


class TestEncryptedOTTRegion:
    def region(self, slots=64, ways=8, key=b"K" * 16):
        return EncryptedOTTRegion(slots=slots, ott_key=key, ways=ways)

    def test_store_fetch_roundtrip(self):
        region = self.region()
        region.store(entry(3, 7))
        found, probed = region.fetch(3, 7)
        assert found is not None and found.key == bytes([0xAB]) * 16
        assert len(probed) >= 1

    def test_fetch_miss(self):
        found, probed = self.region().fetch(1, 1)
        assert found is None and len(probed) >= 1

    def test_sealed_at_rest(self):
        """The raw slot bytes must reveal neither the key nor the IDs."""
        region = self.region()
        slot = region.store(entry(3, 7))
        raw = region.slot_bytes(slot)
        assert bytes([0xAB]) * 16 not in raw
        assert raw != bytes(64)

    def test_wrong_ott_key_cannot_unseal(self):
        a = self.region(key=b"A" * 16)
        slot = a.store(entry(3, 7))
        b = self.region(key=b"B" * 16)
        b._lines[slot] = a.slot_bytes(slot)[: EncryptedOTTRegion.RECORD_BYTES]
        b._occupancy[slot] = (3, 7)
        found, _ = b.fetch(3, 7)
        assert found is None  # tag check fails under the wrong chip key

    def test_tamper_detected(self):
        region = self.region()
        slot = region.store(entry(3, 7))
        region.tamper(slot)
        found, _ = region.fetch(3, 7)
        assert found is None
        assert region.stats.get("tag_failures") == 1

    def test_update_in_place(self):
        region = self.region()
        region.store(entry(3, 7, fill=0x11))
        region.store(entry(3, 7, fill=0x22))
        found, _ = region.fetch(3, 7)
        assert found.key == bytes([0x22]) * 16
        assert len(region) == 1

    def test_remove(self):
        region = self.region()
        slot = region.store(entry(3, 7))
        assert region.remove(3, 7) == slot
        assert region.remove(3, 7) is None
        found, _ = region.fetch(3, 7)
        assert found is None
        assert region.slot_bytes(slot) == bytes(64)

    def test_set_overflow_raises_loudly(self):
        region = self.region(slots=8, ways=8)  # one set
        for i in range(8):
            region.store(entry(1, i))
        with pytest.raises(KeyUnavailableError):
            region.store(entry(1, 100))

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            EncryptedOTTRegion(slots=7, ott_key=bytes(16), ways=8)
        with pytest.raises(ValueError):
            EncryptedOTTRegion(slots=12, ott_key=bytes(16), ways=8)
