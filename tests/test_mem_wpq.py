"""Write Pending Queue: burst absorption and the full-queue stall cliff."""

import pytest

from repro.mem import WPQConfig, WritePendingQueue
from repro.sim import Machine, MachineConfig, Scheme


class TestQueueModel:
    def test_single_accept_is_cheap(self):
        wpq = WritePendingQueue(WPQConfig(entries=4))
        assert wpq.accept(0.0) == pytest.approx(wpq.config.accept_ns)

    def test_burst_within_capacity_absorbed(self):
        wpq = WritePendingQueue(WPQConfig(entries=4, drain_ns_per_entry=150.0))
        for _ in range(4):
            assert wpq.accept(0.0) == pytest.approx(wpq.config.accept_ns)
        assert wpq.occupancy_at(0.0) == 4

    def test_burst_beyond_capacity_stalls(self):
        wpq = WritePendingQueue(WPQConfig(entries=4, drain_ns_per_entry=150.0))
        for _ in range(4):
            wpq.accept(0.0)
        stalled = wpq.accept(0.0)
        assert stalled > wpq.config.accept_ns
        assert wpq.stats.get("stalls") == 1

    def test_drain_over_time_frees_slots(self):
        wpq = WritePendingQueue(WPQConfig(entries=4, drain_ns_per_entry=100.0))
        for _ in range(4):
            wpq.accept(0.0)
        # 250 ns later, two entries have drained.
        assert wpq.occupancy_at(250.0) == 2
        assert wpq.accept(250.0) == pytest.approx(wpq.config.accept_ns)

    def test_spaced_flushes_never_stall(self):
        wpq = WritePendingQueue(WPQConfig(entries=2, drain_ns_per_entry=100.0))
        now = 0.0
        for _ in range(20):
            assert wpq.accept(now) == pytest.approx(wpq.config.accept_ns)
            now += 150.0  # slower than the drain rate
        assert wpq.stats.get("stalls") == 0

    def test_drain_all(self):
        wpq = WritePendingQueue(WPQConfig(entries=4, drain_ns_per_entry=100.0))
        for _ in range(3):
            wpq.accept(0.0)
        assert wpq.drain_all(0.0) == pytest.approx(300.0)
        assert wpq.occupancy_at(0.0) == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            WPQConfig(entries=0)

    def test_occupancy_at_exact_drain_boundaries(self):
        """Occupancy steps down exactly at each drain completion; an
        entry mid-service still occupies its slot until it finishes."""
        wpq = WritePendingQueue(WPQConfig(entries=4, drain_ns_per_entry=100.0))
        for _ in range(4):
            wpq.accept(0.0)
        assert wpq.occupancy_at(0.0) == 4
        assert wpq.occupancy_at(99.9) == 4  # first drain not yet done
        assert wpq.occupancy_at(100.0) == 3  # exactly done
        assert wpq.occupancy_at(100.1) == 3
        assert wpq.occupancy_at(300.0) == 1
        assert wpq.occupancy_at(400.0) == 0
        assert wpq.occupancy_at(1e9) == 0

    def test_drain_all_after_a_stall(self):
        """A stalled accept leaves a full backlog; drain_all must report
        the whole remaining service time and empty the queue."""
        wpq = WritePendingQueue(WPQConfig(entries=2, drain_ns_per_entry=100.0))
        wpq.accept(0.0)
        wpq.accept(0.0)
        wpq.accept(0.0)  # stalls: waits for a slot, re-fills the queue
        assert wpq.stats.get("stalls") == 1
        # Backlog after the stall: 2 in-queue entries + the drain the
        # stalled entry waited out = clears at 300 ns.
        assert wpq.drain_all(0.0) == pytest.approx(300.0)
        assert wpq.occupancy_at(0.0) == 0
        # A second drain with nothing queued is free.
        assert wpq.drain_all(0.0) == pytest.approx(0.0)

    def test_crash_drain_partial(self):
        wpq = WritePendingQueue(WPQConfig(entries=8, drain_ns_per_entry=100.0))
        for _ in range(6):
            wpq.accept(0.0)
        drained, lost = wpq.crash_drain(0.0, 0.5)
        assert (drained, lost) == (3, 3)
        assert wpq.occupancy_at(0.0) == 0  # queue is gone either way
        assert wpq.stats.get("crash_drained_entries") == 3
        assert wpq.stats.get("crash_lost_entries") == 3

    def test_crash_drain_full_and_none(self):
        wpq = WritePendingQueue(WPQConfig(entries=8, drain_ns_per_entry=100.0))
        for _ in range(4):
            wpq.accept(0.0)
        assert wpq.crash_drain(0.0, 1.0) == (4, 0)
        for _ in range(4):
            wpq.accept(0.0)
        assert wpq.crash_drain(0.0, 0.0) == (0, 4)

    def test_crash_drain_rejects_bad_fraction(self):
        wpq = WritePendingQueue(WPQConfig(entries=4))
        with pytest.raises(ValueError):
            wpq.crash_drain(0.0, -0.1)
        with pytest.raises(ValueError):
            wpq.crash_drain(0.0, 1.1)


class TestMachineIntegration:
    def _machine(self, model_wpq):
        machine = Machine(MachineConfig(scheme=Scheme.BASELINE_SECURE, model_wpq=model_wpq))
        machine.add_user(uid=1000, gid=100, passphrase="p")
        return machine

    def test_disabled_by_default(self):
        assert self._machine(False).wpq is None

    def test_enabled_counts_accepts(self):
        machine = self._machine(True)
        handle = machine.create_file("/pmem/f", uid=1000)
        base = machine.mmap(handle, pages=4)
        machine.persist(base, 4096)  # 64 back-to-back flushes
        assert machine.wpq.stats.get("accepts") == 64

    def test_large_burst_hits_the_stall_cliff(self):
        machine = self._machine(True)
        handle = machine.create_file("/pmem/f", uid=1000)
        base = machine.mmap(handle, pages=4)
        machine.persist(base, 4096)
        assert machine.wpq.stats.get("stalls") > 0

    def test_slow_device_makes_bursts_expensive(self):
        """The cliff the fixed-ADR constant cannot express: with a slow
        drain (wear-degraded PCM, say), a flush burst's cost scales with
        the device rate, not the constant."""
        from repro.mem import WPQConfig

        def run(drain_ns):
            machine = Machine(MachineConfig(
                scheme=Scheme.BASELINE_SECURE,
                model_wpq=True,
                wpq=WPQConfig(entries=16, drain_ns_per_entry=drain_ns),
            ))
            machine.add_user(uid=1000, gid=100, passphrase="p")
            handle = machine.create_file("/pmem/f", uid=1000)
            base = machine.mmap(handle, pages=4)
            machine.store(base, 4096)
            start = machine.elapsed_ns
            machine.persist(base, 4096)
            return machine.elapsed_ns - start

        assert run(600.0) > run(150.0) * 1.5
