"""Split-counter blocks: bumps, overflow, serialisation, store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secmem import CounterBlock, CounterStore, FECB_MAJOR_BITS, MINOR_BITS


class TestCounterBlock:
    def test_initial_state(self):
        blk = CounterBlock()
        assert blk.value_for(0) == (0, 0)
        assert blk.value_for(63) == (0, 0)

    def test_bump_increments_one_minor(self):
        blk = CounterBlock()
        assert blk.bump(5) is False
        assert blk.value_for(5) == (0, 1)
        assert blk.value_for(6) == (0, 0)

    def test_minor_overflow_bumps_major_and_resets(self):
        blk = CounterBlock()
        for _ in range((1 << MINOR_BITS) - 1):
            assert blk.bump(0) is False
        assert blk.bump(0) is True  # the 128th write overflows
        assert blk.major == 1
        assert all(m == 0 for m in blk.minors)

    def test_overflow_resets_other_minors_too(self):
        blk = CounterBlock()
        blk.bump(3)
        blk.bump(3)
        for _ in range(1 << MINOR_BITS):
            blk.bump(0)
        assert blk.value_for(3) == (1, 0)

    def test_major_exhaustion_raises(self):
        blk = CounterBlock(major_bits=1)
        blk.major = 1  # at the limit
        for _ in range((1 << MINOR_BITS) - 1):
            blk.bump(0)
        with pytest.raises(OverflowError):
            blk.bump(0)

    def test_fecb_major_width(self):
        blk = CounterBlock(major_bits=FECB_MAJOR_BITS)
        assert blk.major_limit == 1 << 32

    def test_reset(self):
        blk = CounterBlock()
        blk.bump(0)
        blk.bump(1)
        blk.reset()
        assert blk.major == 0 and all(m == 0 for m in blk.minors)

    def test_serialize_changes_with_state(self):
        blk = CounterBlock()
        before = blk.serialize()
        blk.bump(0)
        after_minor = blk.serialize()
        assert before != after_minor
        blk.major += 1
        assert blk.serialize() != after_minor

    def test_serialize_length_covers_fields(self):
        blk = CounterBlock()
        expected_bits = 64 + 64 * MINOR_BITS
        assert len(blk.serialize()) == (expected_bits + 7) // 8

    def test_copy_from(self):
        a, b = CounterBlock(), CounterBlock()
        a.bump(7)
        a.major = 3
        b.copy_from(a)
        assert b.major == 3 and b.value_for(7) == (3, 1)
        a.bump(7)
        assert b.value_for(7) == (3, 1)  # deep copy of minors

    @given(bumps=st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_version_monotonicity_property(self, bumps):
        """(major, minor) for a line never repeats across its bumps."""
        blk = CounterBlock()
        seen = {line: {blk.value_for(line)} for line in range(64)}
        for line in bumps:
            blk.bump(line)
            version = blk.value_for(line)
            assert version not in seen[line] or blk.major > 0  # majors dedupe
            seen[line].add(version)


class TestCounterStore:
    def test_block_materialises_once(self):
        store = CounterStore()
        assert store.block(3) is store.block(3)

    def test_peek_does_not_materialise(self):
        store = CounterStore()
        assert store.peek(3) is None
        store.block(3)
        assert store.peek(3) is not None

    def test_major_bits_propagate(self):
        store = CounterStore(major_bits=32)
        assert store.block(0).major_limit == 1 << 32

    def test_snapshot_restore_roundtrip(self):
        store = CounterStore()
        store.block(1).bump(5)
        store.block(2).major = 9
        snap = store.snapshot()
        store.block(1).bump(5)
        store.restore(snap)
        assert store.block(1).value_for(5) == (0, 1)
        assert store.block(2).major == 9

    def test_snapshot_is_detached(self):
        store = CounterStore()
        store.block(0).bump(0)
        snap = store.snapshot()
        store.block(0).bump(0)
        assert snap[0][1][0] == 1
