"""Extended features: machine-level file copy, many-files workload."""

import pytest

from repro.mem import PAGE_SIZE
from repro.sim import Machine, MachineConfig, Scheme
from repro.workloads import ManyFilesWorkload, run_workload


def functional_machine():
    m = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
    m.add_user(uid=1000, gid=100, passphrase="pw")
    return m


class TestCopyFile:
    def _written_source(self, m, content):
        src = m.create_file("/pmem/src", uid=1000, encrypted=True)
        base = m.mmap(src, pages=2)
        m.store_bytes(base, content)
        m.store_bytes(base + PAGE_SIZE, content[::-1])
        return src

    def test_copy_preserves_content(self):
        m = functional_machine()
        content = b"page zero content".ljust(64, b"_")
        self._written_source(m, content)
        copied = m.copy_file("/pmem/src", "/pmem/dst", uid=1000)
        assert copied == 2 * PAGE_SIZE
        dst = m.open_file("/pmem/dst", uid=1000)
        dst_base = m.mmap(dst, pages=2)
        assert m.load_bytes(dst_base, 64) == content
        assert m.load_bytes(dst_base + PAGE_SIZE, 64) == content[::-1]

    def test_copy_reseals_under_new_location(self):
        m = functional_machine()
        content = b"A" * 64
        src = self._written_source(m, content)
        m.copy_file("/pmem/src", "/pmem/dst", uid=1000)
        dst = m.open_file("/pmem/dst", uid=1000)
        src_ct = m.controller.store.read_line(src.inode.extents[0] * PAGE_SIZE)
        dst_ct = m.controller.store.read_line(dst.inode.extents[0] * PAGE_SIZE)
        assert src_ct != dst_ct  # spatial uniqueness of pads

    def test_copy_creates_destination_with_matching_encryption(self):
        m = functional_machine()
        self._written_source(m, b"x" * 64)
        m.copy_file("/pmem/src", "/pmem/dst", uid=1000)
        assert m.fs.stat("/pmem/dst").encrypted

    def test_copy_requires_functional_mode(self):
        m = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=False))
        m.add_user(uid=1000, gid=100, passphrase="pw")
        m.create_file("/pmem/src", uid=1000)
        with pytest.raises(RuntimeError):
            m.copy_file("/pmem/src", "/pmem/dst", uid=1000)


class TestManyFilesWorkload:
    def test_runs_and_installs_many_keys(self):
        cfg = MachineConfig(scheme=Scheme.FSENCR)
        result = run_workload(cfg, ManyFilesWorkload(num_files=20, rounds=2))
        assert result.stats.get("controller.keys_installed") == 20
        assert result.elapsed_ns > 0

    def test_ott_pressure_causes_spills_when_table_tiny(self):
        from repro.core import FsEncrController, OpenTunnelTable

        cfg = MachineConfig(scheme=Scheme.FSENCR)
        machine = Machine(cfg)
        # Shrink the OTT after construction: 8 entries vs 20 files.
        machine.controller.ott = OpenTunnelTable(banks=1, entries_per_bank=8)
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        w = ManyFilesWorkload(num_files=20, rounds=2)
        w.run(machine)
        assert machine.controller.stats.get("ott_spills") > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ManyFilesWorkload(num_files=0)

    def test_deterministic(self):
        cfg = MachineConfig(scheme=Scheme.FSENCR)
        a = run_workload(cfg, ManyFilesWorkload(num_files=10, rounds=2, seed=3))
        b = run_workload(cfg, ManyFilesWorkload(num_files=10, rounds=2, seed=3))
        assert a.elapsed_ns == b.elapsed_ns
