"""PMEMKV driver internals: key sequences, pool sizing, phases."""

import pytest

from repro.sim import Machine, MachineConfig, Scheme
from repro.workloads import make_pmemkv_workload, run_workload
from repro.workloads.pmemkv import LARGE_VALUE, SMALL_VALUE, Fillrandom, Readrandom


CFG = MachineConfig(scheme=Scheme.FSENCR)


class TestConstruction:
    def test_name_derivation_from_value_size(self):
        assert Fillrandom(value_size=64).name == "Fillrandom-S"
        assert Fillrandom(value_size=4096).name == "Fillrandom-L"
        assert Fillrandom(value_size=256).name == "Fillrandom-S"  # <=256 is S
        assert Fillrandom(value_size=257).name == "Fillrandom-L"

    def test_default_ops_differ_by_size(self):
        assert Fillrandom(value_size=SMALL_VALUE).ops > Fillrandom(value_size=LARGE_VALUE).ops

    def test_invalid_value_size(self):
        with pytest.raises(ValueError):
            Fillrandom(value_size=0)

    def test_explicit_ops_respected(self):
        assert Fillrandom(value_size=64, ops=123).ops == 123


class TestKeySequences:
    def test_sequential_keys_ordered(self):
        w = Fillrandom(value_size=64, ops=20)
        assert w._keys(shuffled=False) == list(range(20))

    def test_shuffled_keys_are_permutation(self):
        w = Fillrandom(value_size=64, ops=20, seed=7)
        keys = w._keys(shuffled=True)
        assert sorted(keys) == list(range(20))
        assert keys != list(range(20))

    def test_shuffle_deterministic_per_seed(self):
        a = Fillrandom(value_size=64, ops=20, seed=7)._keys(shuffled=True)
        b = Fillrandom(value_size=64, ops=20, seed=7)._keys(shuffled=True)
        assert a == b

    def test_shuffle_differs_across_seeds(self):
        a = Fillrandom(value_size=64, ops=20, seed=7)._keys(shuffled=True)
        b = Fillrandom(value_size=64, ops=20, seed=8)._keys(shuffled=True)
        assert a != b


class TestPoolSizing:
    def test_pool_holds_the_dataset(self):
        """The pool must absorb the fill (and overwrite churn) without
        PoolExhausted at any supported op count."""
        for name in ("Fillrandom-S", "Fillrandom-L", "Overwrite-L"):
            run_workload(CFG, make_pmemkv_workload(name, ops=50))  # no raise

    def test_pool_pages_bounded(self):
        w = Fillrandom(value_size=4096, ops=10_000)
        assert w._pool_pages() <= 24 * 1024  # stays within the PMEM mount


class TestMeasurementPhases:
    def test_prefill_excluded_from_measurement(self):
        """Readrandom pre-fills before the mark: its measured window must
        not include the fill's write traffic."""
        machine = Machine(CFG)
        machine.add_user(uid=1000, gid=100, passphrase="workload-pass")
        workload = Readrandom(value_size=64, ops=50)
        workload.run(machine)
        result = machine.result(workload.name)
        total_writes = machine.device.write_count
        assert result.nvm_writes < total_writes  # fill writes excluded

    def test_fill_included_for_fill_benchmarks(self):
        machine = Machine(CFG)
        machine.add_user(uid=1000, gid=100, passphrase="workload-pass")
        workload = Fillrandom(value_size=64, ops=50)
        workload.run(machine)
        result = machine.result(workload.name)
        assert result.nvm_writes > 0
