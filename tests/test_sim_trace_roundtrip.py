"""Trace round-trip fidelity: capture -> JSONL -> replay == direct run.

Every built-in workload family is captured through a
:class:`TraceRecorder`, saved to the portable JSON-lines format, loaded
back, and replayed on a fresh machine under every registered scheme.
The replayed run must be bit-identical to direct execution — same
clock, same NVM traffic, same stats dict — which pins the two trace
fidelity fixes (fractional compute ns, mmap handle binding) and gates
the batch compiler's input format.
"""

import pytest

from repro.sim import Machine, Trace, TraceRecorder, get_scheme, replay, scheme_names
from repro.sim.config import MachineConfig
from repro.sim.trace import TraceOp
from repro.workloads import make_dax_micro, make_pmemkv_workload, make_whisper_workload
from repro.workloads.base import run_workload

_FACTORIES = {
    "DAX-1": lambda: make_dax_micro("DAX-1", iterations=120, seed=7),
    "Fillseq-S": lambda: make_pmemkv_workload("Fillseq-S", ops=24, seed=1234),
    "Hashmap": lambda: make_whisper_workload("Hashmap", ops=40, seed=99),
}


def _capture(config, workload):
    """Run the workload through a recorder; return (trace, RunResult)."""
    machine = Machine(config)
    recorder = TraceRecorder(machine, name=workload.name)
    workload.setup(recorder)
    workload.run(recorder)
    return recorder.trace, machine.result(workload.name)


@pytest.mark.parametrize("workload_name", sorted(_FACTORIES))
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_roundtrip_bit_identical(workload_name, scheme_name, tmp_path):
    factory = _FACTORIES[workload_name]
    config = get_scheme(scheme_name).configure(MachineConfig())

    direct = run_workload(config, factory())
    trace, captured = _capture(config, factory())
    assert captured.to_dict() == direct.to_dict()  # recording is transparent

    path = tmp_path / "trace.jsonl"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.ops == trace.ops

    fresh = Machine(config)
    factory().setup(fresh)
    replay(loaded, fresh)
    replayed = fresh.result(workload_name)
    assert replayed.to_dict() == direct.to_dict()


class TestComputeFidelity:
    """Regression: compute() used to store int(ns), so fractional
    compute times drifted between capture and replay."""

    def test_fractional_ns_survives_json(self, tmp_path):
        machine = Machine(MachineConfig())
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        recorder = TraceRecorder(machine, name="t")
        recorder.compute(12.75)

        path = tmp_path / "trace.jsonl"
        recorder.trace.save(path)
        (op,) = Trace.load(path).ops
        assert op.ns == 12.75

        fresh = Machine(MachineConfig())
        fresh.add_user(uid=1000, gid=100, passphrase="pw")
        replay(Trace.load(path), fresh)
        assert fresh.result("t").elapsed_ns == machine.result("t").elapsed_ns

    def test_legacy_compute_still_replays(self):
        # v1 traces carry only the truncated size; replay keeps using it.
        machine = Machine(MachineConfig())
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        replay(Trace(name="v1", ops=[TraceOp(op="compute", size=50)]), machine)
        assert machine.result("t").elapsed_ns == 50.0

    def test_v1_json_line_loads(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text(
            '{"name": "old"}\n'
            '{"op": "compute", "addr": 0, "size": 50, "path": "", "flag": false}\n'
        )
        trace = Trace.load(path)
        assert trace.name == "old"
        assert trace.ops == [TraceOp(op="compute", size=50)]


class TestMmapBinding:
    """Regression: replay() used to bind every mmap to the most recent
    handle, mis-mapping interleaved create/open + mmap sequences."""

    @staticmethod
    def _machine():
        machine = Machine(MachineConfig())
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        return machine

    @staticmethod
    def _drive(m):
        """Create two files, then mmap the *first* — the sequence the
        last-handle heuristic mis-bound."""
        first = m.create_file("/pmem/a.dat", uid=1000)
        m.create_file("/pmem/b.dat", uid=1000)
        base = m.mmap(first, pages=1)
        m.mark_measurement_start()
        for i in range(8):
            m.store(base + i * 64, 64)

    def test_interleaved_mmap_binds_by_path(self):
        machine = self._machine()
        recorder = TraceRecorder(machine, name="t")
        self._drive(recorder)
        direct = machine.result("t")

        mmap_ops = [op for op in recorder.trace.ops if op.op == "mmap"]
        assert mmap_ops[0].path == "/pmem/a.dat"
        assert mmap_ops[0].uid == 1000

        fresh = self._machine()
        replay(recorder.trace, fresh)
        assert fresh.result("t").to_dict() == direct.to_dict()

    def test_legacy_single_file_trace_still_replays(self):
        trace = Trace(
            name="v1",
            ops=[
                TraceOp(op="create", path="/pmem/a.dat", addr=1000, size=0o644),
                TraceOp(op="mmap", size=1),  # no path recorded
            ],
        )
        replay(trace, self._machine())  # unambiguous: one file open

    def test_legacy_multi_file_trace_raises(self):
        trace = Trace(
            name="v1",
            ops=[
                TraceOp(op="create", path="/pmem/a.dat", addr=1000, size=0o644),
                TraceOp(op="create", path="/pmem/b.dat", addr=1000, size=0o644),
                TraceOp(op="mmap", size=1),  # ambiguous under two files
            ],
        )
        with pytest.raises(ValueError, match="ambiguous"):
            replay(trace, self._machine())

    def test_unknown_path_raises(self):
        trace = Trace(
            name="bad", ops=[TraceOp(op="mmap", path="/pmem/ghost.dat", size=1)]
        )
        with pytest.raises(ValueError, match="ghost"):
            replay(trace, self._machine())
