"""Experiment harnesses: tiny-footprint smoke runs of every figure."""

import pytest

from repro.analysis import (
    figure3_software_encryption,
    figure8_to_10_pmemkv,
    figure11_whisper,
    figure12_to_14_micro,
    figure15_cache_sensitivity,
    render_sensitivity,
)


class TestFigure3:
    def test_rows_and_direction(self):
        table = figure3_software_encryption(ops=250)
        assert len(table.rows) == 3
        assert {row.workload for row in table.rows} == {"YCSB", "Hashmap", "CTree"}
        assert all(row.scheme == "software_encryption" for row in table.rows)
        # Even at tiny scale, software encryption must not win.
        assert table.mean("slowdown") >= 1.0


class TestFigures8to10:
    def test_covers_all_ten_benchmarks(self):
        table = figure8_to_10_pmemkv(ops=60)
        assert len(table.rows) == 10
        names = [row.workload for row in table.rows]
        assert names[0] == "Fillrandom-S" and names[-1] == "Readseq-L"

    def test_all_three_series_present(self):
        table = figure8_to_10_pmemkv(ops=60)
        for row in table.rows:
            assert row.slowdown > 0
            assert row.normalized_reads >= 0
            assert row.normalized_writes >= 0


class TestFigure11:
    def test_rows(self):
        table = figure11_whisper(ops=200)
        assert [row.workload for row in table.rows] == ["YCSB", "Hashmap", "CTree"]
        assert all(row.scheme == "fsencr" for row in table.rows)


class TestFigures12to14:
    def test_rows(self):
        table = figure12_to_14_micro(iterations=500)
        assert [row.workload for row in table.rows] == ["DAX-1", "DAX-2", "DAX-3", "DAX-4"]


class TestFigure15:
    def test_curves_shape(self):
        curves = figure15_cache_sensitivity(
            cache_sizes=[2 * 1024, 8 * 1024],
            pmemkv_ops=60,
            whisper_ops=150,
            micro_iters=500,
        )
        assert set(curves) == {"Fillrandom-L", "Hashmap", "DAX-2"}
        for curve in curves.values():
            assert set(curve) == {2 * 1024, 8 * 1024}

    def test_render(self):
        curves = {"Hashmap": {2048: 3.5, 8192: 2.1}}
        text = render_sensitivity(curves)
        assert "Hashmap" in text and "2KB" in text and "8KB" in text

    def test_default_sweep_matches_module_constant(self):
        from repro.analysis import FIG15_CACHE_SIZES

        assert FIG15_CACHE_SIZES == sorted(FIG15_CACHE_SIZES)
        assert all(size % 1024 == 0 for size in FIG15_CACHE_SIZES)


class TestTablesRender:
    def test_render_all(self):
        table = figure11_whisper(ops=150)
        text = table.render()
        assert "slowdown" in text and "average" in text
