"""Baseline secure controller: timing flows and functional crypto."""

import pytest

from repro.mem import LINE_SIZE, MemoryRequest
from repro.secmem import (
    BaselineSecureController,
    IntegrityError,
    MetadataCacheConfig,
    MetadataLayout,
    SecureControllerConfig,
)


def controller(functional=False, **config_kwargs):
    layout = MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)
    return BaselineSecureController(
        layout=layout,
        config=SecureControllerConfig(functional=functional, **config_kwargs),
    )


class TestTimingRead:
    def test_cold_read_includes_counter_and_merkle_fetches(self):
        ctl = controller()
        ctl.access(MemoryRequest(addr=0x1000, is_write=False))
        assert ctl.stats.get("mecb_fetches") == 1
        assert ctl.stats.get("merkle_fetches") >= 1

    def test_warm_read_cheaper_than_cold(self):
        ctl = controller()
        cold = ctl.access(MemoryRequest(addr=0x1000, is_write=False))
        warm = ctl.access(MemoryRequest(addr=0x1000, is_write=False))
        assert warm < cold

    def test_warm_read_bounded_by_row_miss_plus_xor(self):
        """With a counter hit, the pad path (SRAM hit + AES) hides under
        the data fetch; the access costs at most a device row miss plus
        the XOR (Figure 2's "only XOR latency is added")."""
        ctl = controller()
        ctl.access(MemoryRequest(addr=0x1000, is_write=False))
        warm = ctl.access(MemoryRequest(addr=0x1040, is_write=False))
        bound = max(
            ctl.device.timing.row_miss_read_ns,
            ctl.metadata_cache.hit_latency + ctl.config.aes_latency_ns,
        ) + ctl.config.xor_latency_ns
        assert warm <= bound + 1e-9

    def test_same_page_shares_counter_line(self):
        ctl = controller()
        ctl.access(MemoryRequest(addr=0x1000, is_write=False))
        ctl.access(MemoryRequest(addr=0x1040, is_write=False))
        assert ctl.stats.get("mecb_fetches") == 1  # one fetch for the page


class TestTimingWrite:
    def test_write_bumps_counter(self):
        ctl = controller()
        ctl.access(MemoryRequest(addr=0x2000, is_write=True))
        assert ctl.mecb.block(2).value_for(0) == (0, 1)

    def test_osiris_persist_every_stop_loss(self):
        ctl = controller(stop_loss=2)
        for _ in range(4):
            ctl.access(MemoryRequest(addr=0x2000, is_write=True))
        assert ctl.stats.get("osiris_counter_persists") == 2

    def test_minor_overflow_triggers_page_reencryption(self):
        ctl = controller()
        for _ in range(128):
            ctl.access(MemoryRequest(addr=0x2000, is_write=True))
        assert ctl.stats.get("minor_overflows") == 1
        assert ctl.stats.get("page_reencryptions") == 1
        assert ctl.mecb.block(2).major == 1

    def test_overflow_modeling_can_be_disabled(self):
        ctl = controller(model_counter_overflow=False)
        for _ in range(128):
            ctl.access(MemoryRequest(addr=0x2000, is_write=True))
        assert ctl.stats.get("page_reencryptions") == 0

    def test_persist_write_costs_more_than_posted(self):
        ctl_a, ctl_b = controller(), controller()
        posted = ctl_a.access(MemoryRequest(addr=0x3000, is_write=True))
        persist = ctl_b.access(MemoryRequest(addr=0x3000, is_write=True, persist=True))
        assert persist > posted


class TestMetadataTraffic:
    def test_dirty_metadata_eviction_writes_back(self):
        ctl = controller(metadata_cache=MetadataCacheConfig(size_bytes=2 * LINE_SIZE, ways=1))
        # Dirty two counter lines mapping to the same tiny-cache set.
        stride = 4096 * ctl.metadata_cache.config.size_bytes // LINE_SIZE
        for i in range(6):
            ctl.access(MemoryRequest(addr=i * 4096 * 2, is_write=True))
        assert ctl.stats.get("metadata_writebacks") >= 1

    def test_drain_metadata_flushes_dirty_lines(self):
        ctl = controller()
        ctl.access(MemoryRequest(addr=0x1000, is_write=True))
        written = ctl.drain_metadata()
        assert written >= 1
        assert ctl.osiris.pending_lines() == {}


class TestFunctional:
    def test_roundtrip(self):
        ctl = controller(functional=True)
        line = bytes(range(64))
        ctl.write_data(0x4000, line)
        assert ctl.read_data(0x4000) == line

    def test_ciphertext_at_rest(self):
        ctl = controller(functional=True)
        line = b"secret! " * 8
        ctl.write_data(0x4000, line)
        assert ctl.store.read_line(0x4000) != line

    def test_rewrites_rotate_pads(self):
        ctl = controller(functional=True)
        line = bytes(64)
        ctl.write_data(0x4000, line)
        first = ctl.store.read_line(0x4000)
        ctl.write_data(0x4000, line)
        assert ctl.store.read_line(0x4000) != first

    def test_page_reencryption_preserves_data(self):
        ctl = controller(functional=True)
        keep = b"\x5a" * 64
        ctl.write_data(0x4040, keep)
        for _ in range(128):  # overflow line 0's minor counter
            ctl.write_data(0x4000, bytes(64))
        assert ctl.read_data(0x4040) == keep  # resealed under the new major

    def test_counter_tamper_detected_on_read(self):
        ctl = controller(functional=True)
        ctl.write_data(0x4000, bytes(64))
        ctl.mecb.block(4).minors[0] ^= 1
        with pytest.raises(IntegrityError):
            ctl.read_data(0x4000)

    def test_partial_line_addressing(self):
        ctl = controller(functional=True)
        ctl.write_data(0x4000, bytes(range(64)))
        # Reading via a mid-line address returns the whole aligned line.
        assert ctl.read_data(0x4020) == bytes(range(64))

    def test_functional_gates(self):
        ctl = controller(functional=False)
        with pytest.raises(RuntimeError):
            ctl.read_data(0x4000)

    def test_different_lines_different_pads(self):
        ctl = controller(functional=True)
        line = bytes(64)
        ctl.write_data(0x4000, line)
        ctl.write_data(0x4040, line)
        assert ctl.store.read_line(0x4000) != ctl.store.read_line(0x4040)
