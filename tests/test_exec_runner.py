"""repro.exec: cache correctness, parallel/serial equivalence, failures.

The runner's contract has three legs, and each gets direct coverage:

* the content-addressed cache hits only when (spec, source fingerprint)
  both match — any config knob, seed, or source change must miss;
* ``jobs=2`` produces payloads bit-identical to ``jobs=1`` (parallelism
  is an implementation detail, never an input to the simulation);
* a failing cell raises :class:`CellExecutionError` naming the cell —
  a grid run never silently returns partial results.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    CellExecutionError,
    CellSpec,
    ExperimentRunner,
    ResultCache,
    canonical_json,
    cell_key,
    source_fingerprint,
)
from repro.sim.config import MachineConfig, Scheme


def spec_for(workload="Fillseq-S", ops=12, config=None, schemes=None):
    return CellSpec(
        kind="compare",
        workload=workload,
        config=config or MachineConfig(),
        ops=ops,
        schemes=schemes or (Scheme.BASELINE_SECURE.value, Scheme.FSENCR.value),
    )


def runner_for(tmp_path, jobs=1, **kw):
    kw.setdefault("fingerprint", "test-fingerprint")
    return ExperimentRunner(jobs=jobs, cache_dir=tmp_path / "cache", **kw)


# -- spec identity -------------------------------------------------------


def test_canonical_json_is_deterministic_and_config_sensitive():
    a = spec_for()
    b = spec_for()
    assert canonical_json(a) == canonical_json(b)
    c = spec_for(config=MachineConfig().with_metadata_cache(2048))
    assert canonical_json(a) != canonical_json(c)


def test_cell_key_binds_spec_and_fingerprint():
    spec = spec_for()
    assert cell_key(spec, "fp-1") != cell_key(spec, "fp-2")
    assert cell_key(spec, "fp-1") == cell_key(spec_for(), "fp-1")


def test_compare_spec_requires_schemes_and_known_kind():
    with pytest.raises(ValueError):
        CellSpec(kind="compare", workload="X", config=MachineConfig())
    with pytest.raises(ValueError):
        CellSpec(kind="nope", workload="X", config=MachineConfig(), schemes=("fsencr",))
    with pytest.raises(ValueError):
        CellSpec(kind="sweep", workload="X", config=MachineConfig())


# -- cache hit / miss / invalidation ------------------------------------


def test_cold_run_simulates_then_warm_run_is_all_hits(tmp_path):
    runner = runner_for(tmp_path)
    spec = spec_for()

    cold = runner.run([spec])[0]
    assert not cold.from_cache
    assert runner.last_stats.simulated == 1
    assert runner.last_stats.cache_hits == 0

    warm = runner.run([spec])[0]
    assert warm.from_cache
    assert runner.last_stats.simulated == 0
    assert runner.last_stats.cache_hits == 1
    assert warm.payload == cold.payload


def test_config_change_misses(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for()])
    runner.run([spec_for(config=MachineConfig().with_metadata_cache(2048))])
    assert runner.last_stats.cache_hits == 0
    assert runner.last_stats.simulated == 1


def test_seed_and_ops_changes_miss(tmp_path):
    runner = runner_for(tmp_path)
    base = spec_for()
    runner.run([base])
    reseeded = CellSpec(
        kind="compare",
        workload=base.workload,
        config=base.config,
        ops=base.ops,
        workload_seed=4242,
        schemes=base.schemes,
    )
    runner.run([reseeded])
    assert runner.last_stats.cache_hits == 0
    runner.run([spec_for(ops=13)])
    assert runner.last_stats.cache_hits == 0


def test_fingerprint_change_invalidates_everything(tmp_path):
    cold = runner_for(tmp_path, fingerprint="before-edit")
    cold.run([spec_for()])
    edited = runner_for(tmp_path, fingerprint="after-edit")
    edited.run([spec_for()])
    assert edited.last_stats.cache_hits == 0
    assert edited.last_stats.simulated == 1


def test_real_fingerprint_covers_simulator_sources():
    fp = source_fingerprint()
    assert len(fp) == 64
    assert fp == source_fingerprint()  # memoised and stable in-process


def test_no_cache_never_reads_or_writes(tmp_path):
    runner = runner_for(tmp_path, use_cache=False)
    runner.run([spec_for()])
    assert len(runner.cache) == 0
    runner.run([spec_for()])
    assert runner.last_stats.cache_hits == 0


def test_clear_cache_removes_entries(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for()])
    assert len(runner.cache) == 1
    assert runner.clear_cache() == 1
    runner.run([spec_for()])
    assert runner.last_stats.simulated == 1


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    runner = runner_for(tmp_path)
    spec = spec_for()
    runner.run([spec])
    key = cell_key(spec, "test-fingerprint")
    entry_path = runner.cache.directory / key[:2] / f"{key}.json"
    entry_path.write_text("{ truncated", encoding="utf-8")
    result = runner.run([spec])[0]
    assert not result.from_cache
    assert json.loads(entry_path.read_text())["payload"] == result.payload


# -- parallel == serial --------------------------------------------------


def test_jobs2_matches_jobs1_bit_identical(tmp_path):
    grid = [
        spec_for("Fillseq-S", ops=10),
        spec_for("DAX-1", ops=0),
        spec_for("Fillseq-S", ops=10, config=MachineConfig().with_metadata_cache(2048)),
    ]
    serial = runner_for(tmp_path / "serial", jobs=1, use_cache=False).run(grid)
    parallel = runner_for(tmp_path / "parallel", jobs=2, use_cache=False).run(grid)
    assert [r.payload for r in serial] == [r.payload for r in parallel]
    # Order is spec order, not completion order.
    assert [r.spec.label for r in parallel] == [s.label for s in grid]


def test_stats_observability_fields(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for(), spec_for(ops=11)])
    stats = runner.last_stats
    assert stats.cells_total == 2
    assert stats.cache_misses == 2
    assert stats.wall_seconds > 0
    assert stats.cell_seconds > 0
    assert stats.cells_per_second > 0
    summary = stats.summary()
    assert "2 cells" in summary and "jobs=1" in summary
    payload = stats.to_dict()
    assert payload["simulated"] == 2 and payload["cache_hits"] == 0
    # lifetime accumulates across run() calls
    runner.run([spec_for()])
    assert runner.lifetime.cells_total == 3


# -- failure surfacing ---------------------------------------------------


def test_failing_cell_raises_serial(tmp_path):
    runner = runner_for(tmp_path)
    with pytest.raises(CellExecutionError, match="No-Such-Workload"):
        runner.run([spec_for("No-Such-Workload")])


def test_failing_cell_raises_in_pool_never_partial(tmp_path):
    runner = runner_for(tmp_path, jobs=2)
    grid = [spec_for("Fillseq-S", ops=10), spec_for("No-Such-Workload")]
    with pytest.raises(CellExecutionError, match="No-Such-Workload"):
        runner.run(grid)


def test_completed_cells_survive_a_failed_grid(tmp_path):
    runner = runner_for(tmp_path)
    with pytest.raises(CellExecutionError):
        runner.run([spec_for("Fillseq-S", ops=10), spec_for("No-Such-Workload")])
    # The good cell was cached before the bad one raised, so a re-run
    # after the fix only pays for what never completed.
    rerun = runner.run([spec_for("Fillseq-S", ops=10)])[0]
    assert rerun.from_cache


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.get("ab" * 32) is None
    cache.put("ab" * 32, {"payload": {"x": 1}})
    assert cache.get("ab" * 32)["payload"] == {"x": 1}
    assert len(cache) == 1
