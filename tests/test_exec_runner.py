"""repro.exec: cache correctness, parallel/serial equivalence, failures.

The runner's contract has three legs, and each gets direct coverage:

* the content-addressed cache hits only when (spec, source fingerprint)
  both match — any config knob, seed, or source change must miss;
* ``jobs=2`` produces payloads bit-identical to ``jobs=1`` (parallelism
  is an implementation detail, never an input to the simulation);
* a failing cell raises :class:`CellExecutionError` naming the cell —
  a grid run never silently returns partial results.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    CellExecutionError,
    CellSpec,
    ExperimentRunner,
    ResultCache,
    canonical_json,
    cell_key,
    payload_checksum,
    source_fingerprint,
)
from repro.sim.config import MachineConfig, Scheme


def spec_for(workload="Fillseq-S", ops=12, config=None, schemes=None):
    return CellSpec(
        kind="compare",
        workload=workload,
        config=config or MachineConfig(),
        ops=ops,
        schemes=schemes or (Scheme.BASELINE_SECURE.value, Scheme.FSENCR.value),
    )


def runner_for(tmp_path, jobs=1, **kw):
    kw.setdefault("fingerprint", "test-fingerprint")
    return ExperimentRunner(jobs=jobs, cache_dir=tmp_path / "cache", **kw)


# -- spec identity -------------------------------------------------------


def test_canonical_json_is_deterministic_and_config_sensitive():
    a = spec_for()
    b = spec_for()
    assert canonical_json(a) == canonical_json(b)
    c = spec_for(config=MachineConfig().with_metadata_cache(2048))
    assert canonical_json(a) != canonical_json(c)


def test_cell_key_binds_spec_and_fingerprint():
    spec = spec_for()
    assert cell_key(spec, "fp-1") != cell_key(spec, "fp-2")
    assert cell_key(spec, "fp-1") == cell_key(spec_for(), "fp-1")


def test_compare_spec_requires_schemes_and_known_kind():
    with pytest.raises(ValueError):
        CellSpec(kind="compare", workload="X", config=MachineConfig())
    with pytest.raises(ValueError):
        CellSpec(kind="nope", workload="X", config=MachineConfig(), schemes=("fsencr",))
    with pytest.raises(ValueError):
        CellSpec(kind="sweep", workload="X", config=MachineConfig())


# -- cache hit / miss / invalidation ------------------------------------


def test_cold_run_simulates_then_warm_run_is_all_hits(tmp_path):
    runner = runner_for(tmp_path)
    spec = spec_for()

    cold = runner.run([spec])[0]
    assert not cold.from_cache
    assert runner.last_stats.simulated == 1
    assert runner.last_stats.cache_hits == 0

    warm = runner.run([spec])[0]
    assert warm.from_cache
    assert runner.last_stats.simulated == 0
    assert runner.last_stats.cache_hits == 1
    assert warm.payload == cold.payload


def test_config_change_misses(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for()])
    runner.run([spec_for(config=MachineConfig().with_metadata_cache(2048))])
    assert runner.last_stats.cache_hits == 0
    assert runner.last_stats.simulated == 1


def test_seed_and_ops_changes_miss(tmp_path):
    runner = runner_for(tmp_path)
    base = spec_for()
    runner.run([base])
    reseeded = CellSpec(
        kind="compare",
        workload=base.workload,
        config=base.config,
        ops=base.ops,
        workload_seed=4242,
        schemes=base.schemes,
    )
    runner.run([reseeded])
    assert runner.last_stats.cache_hits == 0
    runner.run([spec_for(ops=13)])
    assert runner.last_stats.cache_hits == 0


def test_fingerprint_change_invalidates_everything(tmp_path):
    cold = runner_for(tmp_path, fingerprint="before-edit")
    cold.run([spec_for()])
    edited = runner_for(tmp_path, fingerprint="after-edit")
    edited.run([spec_for()])
    assert edited.last_stats.cache_hits == 0
    assert edited.last_stats.simulated == 1


def test_real_fingerprint_covers_simulator_sources():
    fp = source_fingerprint()
    assert len(fp) == 64
    assert fp == source_fingerprint()  # memoised and stable in-process


def test_no_cache_never_reads_or_writes(tmp_path):
    runner = runner_for(tmp_path, use_cache=False)
    runner.run([spec_for()])
    assert len(runner.cache) == 0
    runner.run([spec_for()])
    assert runner.last_stats.cache_hits == 0


def test_clear_cache_removes_entries(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for()])
    assert len(runner.cache) == 1
    assert runner.clear_cache() == 1
    runner.run([spec_for()])
    assert runner.last_stats.simulated == 1


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    runner = runner_for(tmp_path)
    spec = spec_for()
    runner.run([spec])
    key = cell_key(spec, "test-fingerprint")
    entry_path = runner.cache.directory / key[:2] / f"{key}.json"
    entry_path.write_text("{ truncated", encoding="utf-8")
    result = runner.run([spec])[0]
    assert not result.from_cache
    assert json.loads(entry_path.read_text())["payload"] == result.payload


# -- parallel == serial --------------------------------------------------


def test_jobs2_matches_jobs1_bit_identical(tmp_path):
    grid = [
        spec_for("Fillseq-S", ops=10),
        spec_for("DAX-1", ops=0),
        spec_for("Fillseq-S", ops=10, config=MachineConfig().with_metadata_cache(2048)),
    ]
    serial = runner_for(tmp_path / "serial", jobs=1, use_cache=False).run(grid)
    parallel = runner_for(tmp_path / "parallel", jobs=2, use_cache=False).run(grid)
    assert [r.payload for r in serial] == [r.payload for r in parallel]
    # Order is spec order, not completion order.
    assert [r.spec.label for r in parallel] == [s.label for s in grid]


def test_stats_observability_fields(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for(), spec_for(ops=11)])
    stats = runner.last_stats
    assert stats.cells_total == 2
    assert stats.cache_misses == 2
    assert stats.wall_seconds > 0
    assert stats.cell_seconds > 0
    assert stats.cells_per_second > 0
    summary = stats.summary()
    assert "2 cells" in summary and "jobs=1" in summary
    payload = stats.to_dict()
    assert payload["simulated"] == 2 and payload["cache_hits"] == 0
    # lifetime accumulates across run() calls
    runner.run([spec_for()])
    assert runner.lifetime.cells_total == 3


# -- failure surfacing ---------------------------------------------------


def test_failing_cell_raises_serial(tmp_path):
    runner = runner_for(tmp_path)
    with pytest.raises(CellExecutionError, match="No-Such-Workload"):
        runner.run([spec_for("No-Such-Workload")])


def test_failing_cell_raises_in_pool_never_partial(tmp_path):
    runner = runner_for(tmp_path, jobs=2)
    grid = [spec_for("Fillseq-S", ops=10), spec_for("No-Such-Workload")]
    with pytest.raises(CellExecutionError, match="No-Such-Workload"):
        runner.run(grid)


def test_completed_cells_survive_a_failed_grid(tmp_path):
    runner = runner_for(tmp_path)
    with pytest.raises(CellExecutionError):
        runner.run([spec_for("Fillseq-S", ops=10), spec_for("No-Such-Workload")])
    # The good cell was cached before the bad one raised, so a re-run
    # after the fix only pays for what never completed.
    rerun = runner.run([spec_for("Fillseq-S", ops=10)])[0]
    assert rerun.from_cache


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.get("ab" * 32) is None
    cache.put("ab" * 32, {"payload": {"x": 1}})
    assert cache.get("ab" * 32)["payload"] == {"x": 1}
    assert len(cache) == 1


# -- cache integrity + tooling (python -m repro cache ...) ---------------


def test_put_stamps_a_checksum_and_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = "ab" * 32
    cache.put(key, {"payload": {"x": 1}})
    entry = json.loads(cache.entry_path(key).read_text())
    assert entry["checksum"] == payload_checksum({"x": 1})
    # Garble the payload but keep the stale checksum: must never be served.
    entry["payload"] = {"x": 2}
    cache.entry_path(key).write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(key) is None
    # Entries from before checksums existed stay readable.
    cache.put("cd" * 32, {"payload": {"y": 1}, "checksum": None})
    legacy = json.loads(cache.entry_path("cd" * 32).read_text())
    del legacy["checksum"]
    cache.entry_path("cd" * 32).write_text(json.dumps(legacy), encoding="utf-8")
    assert cache.get("cd" * 32)["payload"] == {"y": 1}


def test_clear_cache_also_sweeps_orphaned_tmp_files(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for()])
    orphan = runner.cache.directory / "ab" / "deadbeef.tmp.1234"
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_text("{ interrupted", encoding="utf-8")
    assert runner.clear_cache() == 1  # tmp files don't count as entries
    assert not orphan.exists()
    assert not list(runner.cache.directory.rglob("*.tmp.*"))


def test_cache_stats_counts_entries_tmp_and_quarantine(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for(), spec_for(ops=13)])
    cache = runner.cache
    (cache.directory / "zz").mkdir(parents=True, exist_ok=True)
    (cache.directory / "zz" / "x.tmp.99").write_text("{", encoding="utf-8")
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["tmp_files"] == 1
    assert stats["quarantined"] == 0
    assert stats["bytes"] > 0
    assert stats["oldest_age_seconds"] >= stats["newest_age_seconds"] >= 0


def test_cache_verify_quarantines_corrupt_entries(tmp_path):
    runner = runner_for(tmp_path)
    spec = spec_for()
    runner.run([spec, spec_for(ops=13)])
    key = cell_key(spec, "test-fingerprint")
    runner.cache.entry_path(key).write_text("{ truncated", encoding="utf-8")
    report = runner.cache.verify()
    assert report["checked"] == 2
    assert report["ok"] == 1 and report["corrupt"] == 1
    assert report["quarantined"] == [f"{key}.json"]
    assert (runner.cache.directory / "quarantine" / f"{key}.json").exists()
    # The quarantined entry no longer counts as live; a second verify is clean.
    assert len(runner.cache) == 1
    assert runner.cache.verify()["corrupt"] == 0


def test_cache_gc_removes_tmp_orphans_and_stale_fingerprints(tmp_path):
    old = runner_for(tmp_path, fingerprint="old-fp")
    old.run([spec_for()])
    new = runner_for(tmp_path, fingerprint="new-fp")
    new.run([spec_for()])
    orphan = new.cache.directory / "ab" / "x.tmp.77"
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_text("{", encoding="utf-8")
    report = new.cache.gc("new-fp")
    assert report["tmp_removed"] == 1
    assert report["stale_removed"] == 1  # the old-fp entry
    assert report["entries_kept"] == 1
    assert report["bytes_freed"] > 0
    assert len(new.cache) == 1
    # The survivor is the current-fingerprint entry: a warm run hits.
    new.run([spec_for()])
    assert new.last_stats.cache_hits == 1


def test_cache_cli_stats_verify_gc(tmp_path, capsys):
    from repro.cli import main

    cache_dir = tmp_path / "cli-cache"
    runner = ExperimentRunner(jobs=1, cache_dir=cache_dir, fingerprint="cli-fp")
    spec = spec_for()
    runner.run([spec, spec_for(ops=13)])

    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries:     2" in out

    # verify's exit code is the corrupt count — 0 on a clean cache.
    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
    key = cell_key(spec, "cli-fp")
    (cache_dir / key[:2] / f"{key}.json").write_text("{ bad", encoding="utf-8")
    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
    out = capsys.readouterr().out
    assert "1 corrupt" in out and f"{key}.json" in out

    assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "cache gc:" in out


def test_runner_stats_strict_lookup(tmp_path):
    runner = runner_for(tmp_path)
    runner.run([spec_for()])
    stats = runner.last_stats
    assert stats.stat("simulated") == 1
    assert stats.stat("retries") == 0
    with pytest.raises(KeyError, match="reties"):
        stats.stat("reties")  # typos fail loudly, never read as 0
