"""Untrusted-OS extension: enclave key ownership and attestation."""

import pytest

from repro.core import (
    AttestationError,
    EnclaveManager,
    EnclaveOwnershipError,
    FsEncrController,
    KeyUnavailableError,
    set_df,
)
from repro.secmem import MetadataLayout, SecureControllerConfig


LAYOUT = MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)
APP_CODE = b"my trusted database engine v1.0"


def make_manager():
    controller = FsEncrController(layout=LAYOUT, config=SecureControllerConfig(functional=True))
    return EnclaveManager(controller), controller


class TestAttestation:
    def test_enroll_launch(self):
        manager, _ = make_manager()
        enclave_id = manager.enroll(APP_CODE)
        channel = manager.launch(enclave_id, APP_CODE)
        assert channel is not None

    def test_modified_code_refused(self):
        manager, _ = make_manager()
        enclave_id = manager.enroll(APP_CODE)
        with pytest.raises(AttestationError):
            manager.launch(enclave_id, APP_CODE + b" (with a backdoor)")

    def test_unknown_enclave_refused(self):
        manager, _ = make_manager()
        with pytest.raises(AttestationError):
            manager.launch(99, APP_CODE)


class TestKeyOwnership:
    def test_enclave_installs_and_uses_key(self):
        manager, controller = make_manager()
        channel = manager.launch(manager.enroll(APP_CODE), APP_CODE)
        channel.install_file_key(group_id=1, file_id=7, key=bytes([3]) * 16)
        controller.update_fecb(page=2, group_id=1, file_id=7)
        addr = set_df(2 * 4096)
        controller.write_data(addr, b"\x42" * 64)
        assert controller.read_data(addr) == b"\x42" * 64
        assert manager.owner_of(1, 7) is not None

    def test_kernel_cannot_replace_enclave_key(self):
        manager, controller = make_manager()
        channel = manager.launch(manager.enroll(APP_CODE), APP_CODE)
        channel.install_file_key(1, 7, bytes([3]) * 16)
        with pytest.raises(EnclaveOwnershipError):
            controller.install_file_key(1, 7, bytes([9]) * 16)  # ring-0 attack

    def test_kernel_cannot_revoke_enclave_key(self):
        manager, controller = make_manager()
        channel = manager.launch(manager.enroll(APP_CODE), APP_CODE)
        channel.install_file_key(1, 7, bytes([3]) * 16)
        with pytest.raises(EnclaveOwnershipError):
            controller.revoke_file_key(1, 7)

    def test_other_enclave_cannot_touch_key(self):
        manager, _ = make_manager()
        alice = manager.launch(manager.enroll(APP_CODE), APP_CODE)
        other_code = b"some other application"
        mallory = manager.launch(manager.enroll(other_code), other_code)
        alice.install_file_key(1, 7, bytes([3]) * 16)
        with pytest.raises(EnclaveOwnershipError):
            mallory.install_file_key(1, 7, bytes([9]) * 16)
        with pytest.raises(EnclaveOwnershipError):
            mallory.revoke_file_key(1, 7)

    def test_owner_can_revoke_then_key_unavailable(self):
        manager, controller = make_manager()
        channel = manager.launch(manager.enroll(APP_CODE), APP_CODE)
        channel.install_file_key(1, 7, bytes([3]) * 16)
        controller.update_fecb(page=2, group_id=1, file_id=7)
        addr = set_df(2 * 4096)
        controller.write_data(addr, b"\x42" * 64)
        channel.revoke_file_key(1, 7)
        assert manager.owner_of(1, 7) is None
        # Revocation unstamps the page (secure delete): reads fall back
        # to the memory layer only and yield noise, never the plaintext.
        assert controller.read_data(addr) != b"\x42" * 64

    def test_owner_rekey(self):
        manager, controller = make_manager()
        channel = manager.launch(manager.enroll(APP_CODE), APP_CODE)
        channel.install_file_key(1, 7, bytes([3]) * 16)
        controller.update_fecb(page=2, group_id=1, file_id=7)
        addr = set_df(2 * 4096)
        controller.write_data(addr, b"\x55" * 64)
        new_key = channel.rekey_file(1, 7)
        assert new_key != bytes([3]) * 16
        assert controller.read_data(addr) == b"\x55" * 64

    def test_kernel_keys_unaffected(self):
        """Files managed by the (trusted-enough) kernel keep working."""
        manager, controller = make_manager()
        controller.install_file_key(2, 8, bytes([4]) * 16)  # kernel path
        controller.revoke_file_key(2, 8)  # kernel may manage its own

    def test_violations_counted(self):
        manager, controller = make_manager()
        channel = manager.launch(manager.enroll(APP_CODE), APP_CODE)
        channel.install_file_key(1, 7, bytes([3]) * 16)
        with pytest.raises(EnclaveOwnershipError):
            controller.install_file_key(1, 7, bytes([9]) * 16)
        assert manager.stats.get("kernel_rejections") == 1
