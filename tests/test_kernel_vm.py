"""Kernel VM machinery: page tables, TLB, MMU, DF-bit propagation."""

import pytest

from repro.kernel import MMU, TLB, PageFault, PageTable, PageTableEntry
from repro.mem import PAGE_SIZE
from repro.mem.dfbit import has_df


class TestPageTableEntry:
    def test_physical_address_plain(self):
        pte = PageTableEntry(pfn=5)
        assert pte.physical_address(0x123) == 5 * PAGE_SIZE + 0x123

    def test_physical_address_with_df(self):
        pte = PageTableEntry(pfn=5, df=True)
        addr = pte.physical_address(0)
        assert has_df(addr)
        assert addr & (PAGE_SIZE - 1) == 0

    def test_offset_bounds(self):
        pte = PageTableEntry(pfn=5)
        with pytest.raises(ValueError):
            pte.physical_address(PAGE_SIZE)
        with pytest.raises(ValueError):
            pte.physical_address(-1)


class TestPageTable:
    def test_map_lookup_unmap(self):
        pt = PageTable()
        pt.map(7, pfn=100)
        assert pt.lookup(7).pfn == 100
        assert pt.unmap(7).pfn == 100
        assert pt.lookup(7) is None

    def test_not_present_hidden(self):
        pt = PageTable()
        pte = pt.map(7, pfn=100)
        pte.present = False
        assert pt.lookup(7) is None

    def test_unmap_range(self):
        pt = PageTable()
        for vpn in range(10, 14):
            pt.map(vpn, pfn=vpn)
        assert pt.unmap_range(10, 8) == 4
        assert pt.mapped_count() == 0

    def test_df_flag_stored(self):
        pt = PageTable()
        pt.map(7, pfn=100, df=True)
        assert pt.lookup(7).df is True


class TestTLB:
    def test_fill_then_hit(self):
        tlb = TLB(entries=4)
        pte = PageTableEntry(pfn=1)
        tlb.fill(7, pte)
        assert tlb.lookup(7) is pte
        assert tlb.stats.get("hits") == 1

    def test_miss_counted(self):
        tlb = TLB(entries=4)
        assert tlb.lookup(7) is None
        assert tlb.stats.get("misses") == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.fill(1, PageTableEntry(pfn=1))
        tlb.fill(2, PageTableEntry(pfn=2))
        tlb.lookup(1)
        tlb.fill(3, PageTableEntry(pfn=3))  # evicts vpn 2
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) is not None

    def test_invalidate(self):
        tlb = TLB(entries=4)
        tlb.fill(7, PageTableEntry(pfn=1))
        assert tlb.invalidate(7) is True
        assert tlb.invalidate(7) is False
        assert tlb.lookup(7) is None

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.fill(7, PageTableEntry(pfn=1))
        tlb.flush()
        assert tlb.occupancy == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TLB(entries=0)


class TestMMU:
    def make_mmu(self, df_pages=frozenset()):
        mmu = MMU()
        fault_log = []

        def handler(vpn, is_write):
            fault_log.append((vpn, is_write))
            mmu.page_table.map(vpn, pfn=vpn + 100, df=vpn in df_pages)
            return 500.0

        mmu.set_fault_handler(handler)
        return mmu, fault_log

    def test_fault_then_translate(self):
        mmu, log = self.make_mmu()
        result = mmu.translate(3 * PAGE_SIZE + 8, is_write=False)
        assert result.faulted
        assert result.paddr == (3 + 100) * PAGE_SIZE + 8
        assert log == [(3, False)]
        assert result.latency_ns >= 500.0

    def test_second_access_no_fault(self):
        mmu, log = self.make_mmu()
        mmu.translate(3 * PAGE_SIZE, is_write=False)
        result = mmu.translate(3 * PAGE_SIZE + 64, is_write=False)
        assert not result.faulted
        assert len(log) == 1
        assert result.latency_ns == 0.0  # TLB hit

    def test_df_bit_rides_translation(self):
        mmu, _ = self.make_mmu(df_pages={3})
        tagged = mmu.translate(3 * PAGE_SIZE, False)
        plain = mmu.translate(4 * PAGE_SIZE, False)
        assert has_df(tagged.paddr)
        assert not has_df(plain.paddr)

    def test_write_sets_dirty(self):
        mmu, _ = self.make_mmu()
        mmu.translate(3 * PAGE_SIZE, is_write=True)
        assert mmu.page_table.lookup(3).dirty

    def test_write_protection_fault(self):
        mmu = MMU()
        mmu.page_table.map(3, pfn=1, writable=False)
        mmu.translate(3 * PAGE_SIZE, is_write=False)  # read ok
        with pytest.raises(PageFault):
            mmu.translate(3 * PAGE_SIZE, is_write=True)

    def test_no_handler_raises(self):
        mmu = MMU()
        with pytest.raises(PageFault):
            mmu.translate(0, False)

    def test_handler_that_fails_to_map_raises(self):
        mmu = MMU()
        mmu.set_fault_handler(lambda vpn, w: 0.0)  # maps nothing
        with pytest.raises(PageFault):
            mmu.translate(0, False)

    def test_invalidate_forces_walk(self):
        mmu, _ = self.make_mmu()
        mmu.translate(3 * PAGE_SIZE, False)
        mmu.invalidate(3)
        result = mmu.translate(3 * PAGE_SIZE, False)
        assert not result.faulted  # page table still has it
        assert result.latency_ns == mmu.tlb.walk_latency_ns

    def test_negative_vaddr_rejected(self):
        mmu, _ = self.make_mmu()
        with pytest.raises(ValueError):
            mmu.translate(-1, False)
